//! The per-day index over reduced contacts: the bipartite host↔domain view,
//! per-edge timestamp series for beacon detection, per-domain destination
//! IPs for the proximity features, and per-domain HTTP statistics for the
//! `NoRef` / `RareUA` features.
//!
//! This materializes the `dom_host` and `host_rdom` maps of Algorithm 1 plus
//! every per-day lookup the C&C detector and domain-similarity scorer need.

use crate::contact::Contact;
use crate::history::{DomainHistory, UaHistory};
use crate::rare::RareDomains;
use earlybird_logmodel::{Day, DomainSym, FastMap, FastSet, HostId, Ipv4, Timestamp};
use std::collections::BTreeSet;

/// A host→domain edge key.
pub type EdgeKey = (HostId, DomainSym);

#[derive(Clone, Copy, Debug, Default)]
struct EdgeHttp {
    connections: u32,
    with_referer: u32,
    with_common_ua: u32,
    saw_http: bool,
}

impl EdgeHttp {
    /// Combines statistics accumulated for the same edge by independent
    /// builders (shard merge). Counters add; HTTP visibility is sticky.
    fn merge(&mut self, other: EdgeHttp) {
        self.connections += other.connections;
        self.with_referer += other.with_referer;
        self.with_common_ua += other.with_common_ua;
        self.saw_http |= other.saw_http;
    }

    fn observe(&mut self, contact: &Contact, ua_history: Option<&UaHistory>) {
        self.connections += 1;
        if let Some(http) = &contact.http {
            self.saw_http = true;
            if http.referer_present {
                self.with_referer += 1;
            }
            let common_ua = match (http.ua, ua_history) {
                (Some(ua), Some(hist)) => !hist.is_rare(ua),
                (Some(_), None) => true, // no history: assume common
                (None, _) => false,      // missing UA counts as rare
            };
            if common_ua {
                self.with_common_ua += 1;
            }
        }
    }
}

/// Immutable per-day index over one day of reduced [`Contact`]s.
#[derive(Debug)]
pub struct DayIndex {
    day: Day,
    http_available: bool,
    rare: FastSet<DomainSym>,
    new_count: usize,
    domain_hosts: FastMap<DomainSym, BTreeSet<HostId>>,
    host_rare_domains: FastMap<HostId, BTreeSet<DomainSym>>,
    /// Sorted connection timestamps per rare-domain edge.
    edge_series: FastMap<EdgeKey, Vec<Timestamp>>,
    /// First contact per edge, for **all** domains (timing correlation must
    /// reach seed domains that are not rare).
    first_contact: FastMap<EdgeKey, Timestamp>,
    /// Destination IPs per domain, for all domains with known addresses.
    domain_ips: FastMap<DomainSym, BTreeSet<Ipv4>>,
    /// HTTP statistics per rare-domain edge.
    edge_http: FastMap<EdgeKey, EdgeHttp>,
    /// The sorted plain-data form, computed once when the day seals. An
    /// always-on engine serializes every sealed day exactly once while
    /// ingest is running, so the ordering work is paid here — at the day
    /// boundary, where the pipeline already does O(day) finalization —
    /// instead of inside the checkpoint path. `None` for indexes rebuilt
    /// from a restored snapshot: those days already live in the store and
    /// are re-encoded rarely, so keeping a second owned copy would only
    /// slow restore down.
    sealed: Option<DayIndexSnapshot>,
}

impl DayIndex {
    /// Builds the index for `day` from reduced contacts and the day's rare
    /// set. `ua_history` classifies user agents as common or rare; pass
    /// `None` for DNS datasets.
    ///
    /// `contacts` must be sorted by timestamp (whole-day reduction
    /// guarantees this; the assumption is what keeps every per-edge beacon
    /// series sorted). Out-of-order input would silently corrupt
    /// beacon-period estimation, so the batch path asserts sortedness in
    /// debug builds — chunked producers must go through
    /// [`DayIndexBuilder`], which sorts on finalize instead.
    pub fn build(
        day: Day,
        contacts: &[Contact],
        rare: RareDomains,
        ua_history: Option<&UaHistory>,
    ) -> Self {
        debug_assert!(
            contacts.windows(2).all(|w| w[0].ts <= w[1].ts),
            "DayIndex::build requires timestamp-sorted contacts; \
             use DayIndexBuilder for out-of-order chunks"
        );
        let new_count = rare.new_count();
        let rare_set: FastSet<DomainSym> = rare.iter().collect();
        let domain_hosts = rare.domain_hosts().clone();

        let mut host_rare_domains: FastMap<HostId, BTreeSet<DomainSym>> = FastMap::default();
        let mut edge_series: FastMap<EdgeKey, Vec<Timestamp>> = FastMap::default();
        let mut first_contact: FastMap<EdgeKey, Timestamp> = FastMap::default();
        let mut domain_ips: FastMap<DomainSym, BTreeSet<Ipv4>> = FastMap::default();
        let mut edge_http: FastMap<EdgeKey, EdgeHttp> = FastMap::default();

        for c in contacts {
            let edge = (c.host, c.domain);
            first_contact.entry(edge).or_insert(c.ts);
            if let Some(ip) = c.dest_ip {
                domain_ips.entry(c.domain).or_default().insert(ip);
            }
            if rare_set.contains(&c.domain) {
                host_rare_domains.entry(c.host).or_default().insert(c.domain);
                edge_series.entry(edge).or_default().push(c.ts);
                edge_http.entry(edge).or_default().observe(c, ua_history);
            }
        }
        let http_available = edge_http.values().any(|s| s.saw_http);

        let mut index = DayIndex {
            day,
            http_available,
            rare: rare_set,
            new_count,
            domain_hosts,
            host_rare_domains,
            edge_series,
            first_contact,
            domain_ips,
            edge_http,
            sealed: None,
        };
        index.sealed = Some(index.snapshot_uncached());
        index
    }

    /// The indexed day.
    pub fn day(&self) -> Day {
        self.day
    }

    /// Every domain contacted today (rare or not), unordered.
    pub fn domains(&self) -> impl Iterator<Item = DomainSym> + '_ {
        self.domain_hosts.keys().copied()
    }

    /// Whether the underlying dataset carried HTTP context.
    pub fn has_http(&self) -> bool {
        self.http_available
    }

    /// Whether `domain` is rare today.
    pub fn is_rare(&self, domain: DomainSym) -> bool {
        self.rare.contains(&domain)
    }

    /// The day's rare domains (unordered).
    pub fn rare_domains(&self) -> impl Iterator<Item = DomainSym> + '_ {
        self.rare.iter().copied()
    }

    /// Number of rare domains today.
    pub fn rare_count(&self) -> usize {
        self.rare.len()
    }

    /// Number of *new* domains today (pre-unpopularity filter, Fig. 2).
    pub fn new_count(&self) -> usize {
        self.new_count
    }

    /// Distinct hosts contacting `domain` today.
    pub fn hosts_of(&self, domain: DomainSym) -> Option<&BTreeSet<HostId>> {
        self.domain_hosts.get(&domain)
    }

    /// Number of distinct hosts contacting `domain` (the `NoHosts` feature).
    pub fn connectivity(&self, domain: DomainSym) -> usize {
        self.domain_hosts.get(&domain).map_or(0, BTreeSet::len)
    }

    /// The rare domains `host` visited today (Algorithm 1's `host_rdom`).
    pub fn rare_domains_of(&self, host: HostId) -> Option<&BTreeSet<DomainSym>> {
        self.host_rare_domains.get(&host)
    }

    /// Sorted connection timestamps from `host` to rare `domain`.
    pub fn beacon_series(&self, host: HostId, domain: DomainSym) -> Option<&[Timestamp]> {
        self.edge_series.get(&(host, domain)).map(Vec::as_slice)
    }

    /// First contact time from `host` to `domain` (any domain).
    pub fn first_contact(&self, host: HostId, domain: DomainSym) -> Option<Timestamp> {
        self.first_contact.get(&(host, domain)).copied()
    }

    /// Destination IPs observed for `domain`.
    pub fn ips_of(&self, domain: DomainSym) -> Option<&BTreeSet<Ipv4>> {
        self.domain_ips.get(&domain)
    }

    /// Fraction of hosts contacting rare `domain` that never sent a Referer
    /// to it (the `NoRef` feature). `None` when HTTP context is unavailable
    /// or the domain was not contacted.
    pub fn no_ref_fraction(&self, domain: DomainSym) -> Option<f64> {
        if !self.http_available {
            return None;
        }
        self.host_fraction(domain, |stats| stats.with_referer == 0)
    }

    /// Fraction of hosts contacting rare `domain` that used no or only rare
    /// user agents toward it (the `RareUA` feature). `None` when HTTP
    /// context is unavailable or the domain was not contacted.
    pub fn rare_ua_fraction(&self, domain: DomainSym) -> Option<f64> {
        if !self.http_available {
            return None;
        }
        self.host_fraction(domain, |stats| stats.with_common_ua == 0)
    }

    fn host_fraction(&self, domain: DomainSym, pred: impl Fn(&EdgeHttp) -> bool) -> Option<f64> {
        let hosts = self.domain_hosts.get(&domain)?;
        if hosts.is_empty() {
            return None;
        }
        let matching =
            hosts.iter().filter(|&&h| self.edge_http.get(&(h, domain)).is_some_and(&pred)).count();
        Some(matching as f64 / hosts.len() as f64)
    }

    /// Number of rare-domain edges (host, domain) in the day.
    pub fn rare_edge_count(&self) -> usize {
        self.edge_series.len()
    }

    /// Decomposes the index into a sorted, plain-data snapshot — the
    /// persistence hook used by `earlybird-store`. Every collection is
    /// emitted in key order so encoded bytes are deterministic. Sealed
    /// indexes return a clone of the precomputed form; encoders should
    /// prefer borrowing it through [`DayIndex::sealed`].
    pub fn to_snapshot(&self) -> DayIndexSnapshot {
        match &self.sealed {
            Some(snap) => snap.clone(),
            None => self.snapshot_uncached(),
        }
    }

    /// The snapshot computed at seal time, if this index was built by the
    /// live pipeline (`None` after [`DayIndex::from_snapshot`]). Encoders
    /// borrow this so checkpoint serialization under an always-on engine
    /// does no sorting or cloning.
    pub fn sealed(&self) -> Option<&DayIndexSnapshot> {
        self.sealed.as_ref()
    }

    fn snapshot_uncached(&self) -> DayIndexSnapshot {
        let mut rare: Vec<DomainSym> = self.rare.iter().copied().collect();
        rare.sort_unstable();
        let mut domain_hosts: Vec<(DomainSym, Vec<HostId>)> = self
            .domain_hosts
            .iter()
            .map(|(&d, hosts)| (d, hosts.iter().copied().collect()))
            .collect();
        domain_hosts.sort_unstable_by_key(|&(d, _)| d);
        let mut edge_series: Vec<(EdgeKey, Vec<Timestamp>)> =
            self.edge_series.iter().map(|(&k, v)| (k, v.clone())).collect();
        edge_series.sort_unstable_by_key(|&(k, _)| k);
        let mut first_contact: Vec<(EdgeKey, Timestamp)> =
            self.first_contact.iter().map(|(&k, &v)| (k, v)).collect();
        first_contact.sort_unstable_by_key(|&(k, _)| k);
        let mut domain_ips: Vec<(DomainSym, Vec<Ipv4>)> =
            self.domain_ips.iter().map(|(&d, ips)| (d, ips.iter().copied().collect())).collect();
        domain_ips.sort_unstable_by_key(|&(d, _)| d);
        let mut edge_http: Vec<(EdgeKey, EdgeHttpSnapshot)> = self
            .edge_http
            .iter()
            .map(|(&k, s)| {
                (
                    k,
                    EdgeHttpSnapshot {
                        connections: s.connections,
                        with_referer: s.with_referer,
                        with_common_ua: s.with_common_ua,
                        saw_http: s.saw_http,
                    },
                )
            })
            .collect();
        edge_http.sort_unstable_by_key(|&(k, _)| k);
        DayIndexSnapshot {
            day: self.day,
            new_count: self.new_count,
            rare,
            domain_hosts,
            edge_series,
            first_contact,
            domain_ips,
            edge_http,
        }
    }

    /// Reassembles an index from a restored snapshot, re-deriving the
    /// host→rare-domain view and the HTTP-availability flag exactly like
    /// the original constructors did. Never panics: a semantically odd
    /// snapshot yields an index whose accessors simply reflect it.
    pub fn from_snapshot(snap: DayIndexSnapshot) -> Self {
        let rare: FastSet<DomainSym> = snap.rare.into_iter().collect();
        let domain_hosts: FastMap<DomainSym, BTreeSet<HostId>> = snap
            .domain_hosts
            .into_iter()
            .map(|(d, hosts)| (d, hosts.into_iter().collect()))
            .collect();
        let edge_series: FastMap<EdgeKey, Vec<Timestamp>> = snap.edge_series.into_iter().collect();
        let first_contact: FastMap<EdgeKey, Timestamp> = snap.first_contact.into_iter().collect();
        let domain_ips: FastMap<DomainSym, BTreeSet<Ipv4>> =
            snap.domain_ips.into_iter().map(|(d, ips)| (d, ips.into_iter().collect())).collect();
        let edge_http: FastMap<EdgeKey, EdgeHttp> = snap
            .edge_http
            .into_iter()
            .map(|(k, s)| {
                (
                    k,
                    EdgeHttp {
                        connections: s.connections,
                        with_referer: s.with_referer,
                        with_common_ua: s.with_common_ua,
                        saw_http: s.saw_http,
                    },
                )
            })
            .collect();
        let mut host_rare_domains: FastMap<HostId, BTreeSet<DomainSym>> = FastMap::default();
        for &domain in &rare {
            if let Some(hosts) = domain_hosts.get(&domain) {
                for &host in hosts {
                    host_rare_domains.entry(host).or_default().insert(domain);
                }
            }
        }
        let http_available = edge_http.values().any(|s| s.saw_http);
        DayIndex {
            day: snap.day,
            http_available,
            rare,
            new_count: snap.new_count,
            domain_hosts,
            host_rare_domains,
            edge_series,
            first_contact,
            domain_ips,
            edge_http,
            // Restored days stay lazy: they are already persisted and
            // re-encode only on a rare full rewrite, so an owned second
            // copy here would just tax the restore path.
            sealed: None,
        }
    }
}

/// Per-edge HTTP statistics in plain-data form (see
/// [`DayIndex::to_snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeHttpSnapshot {
    /// Connections over the edge.
    pub connections: u32,
    /// Connections that carried a Referer header.
    pub with_referer: u32,
    /// Connections that used a historically common user agent.
    pub with_common_ua: u32,
    /// Whether any connection carried HTTP context at all.
    pub saw_http: bool,
}

/// A [`DayIndex`] decomposed into sorted, plain-data collections for
/// serialization; rebuild with [`DayIndex::from_snapshot`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DayIndexSnapshot {
    /// The indexed day.
    pub day: Day,
    /// New-destination count (pre-unpopularity filter).
    pub new_count: usize,
    /// Rare domains, sorted.
    pub rare: Vec<DomainSym>,
    /// Per-domain host sets, sorted by domain.
    pub domain_hosts: Vec<(DomainSym, Vec<HostId>)>,
    /// Per-rare-edge timestamp series (each ascending), sorted by edge.
    pub edge_series: Vec<((HostId, DomainSym), Vec<Timestamp>)>,
    /// First contact per edge, sorted by edge.
    pub first_contact: Vec<((HostId, DomainSym), Timestamp)>,
    /// Destination IPs per domain, sorted by domain.
    pub domain_ips: Vec<(DomainSym, Vec<Ipv4>)>,
    /// Per-rare-edge HTTP statistics, sorted by edge.
    pub edge_http: Vec<((HostId, DomainSym), EdgeHttpSnapshot)>,
}

/// Incremental constructor of a [`DayIndex`] from contact chunks that may
/// arrive in any order (parallel reduction workers finish out of sequence).
///
/// Rarity cannot be decided mid-day — a domain is rare only if it stays
/// under the unpopularity threshold across the *whole* day — so the builder
/// tracks per-edge series and HTTP statistics for every domain that is new
/// relative to the (frozen, pre-update) [`DomainHistory`], and
/// [`DayIndexBuilder::finalize`] applies the threshold, prunes domains that
/// turned popular, and sorts each surviving edge's timestamp series. The
/// result is identical to [`DayIndex::build`] over the concatenated,
/// timestamp-sorted day.
#[derive(Debug)]
pub struct DayIndexBuilder {
    day: Day,
    unpopular_threshold: usize,
    new_domains: FastSet<DomainSym>,
    domain_hosts: FastMap<DomainSym, BTreeSet<HostId>>,
    edge_series: FastMap<EdgeKey, Vec<Timestamp>>,
    first_contact: FastMap<EdgeKey, Timestamp>,
    domain_ips: FastMap<DomainSym, BTreeSet<Ipv4>>,
    edge_http: FastMap<EdgeKey, EdgeHttp>,
}

impl DayIndexBuilder {
    /// Creates an empty builder for `day` with the rare-destination
    /// unpopularity threshold (10 hosts in the paper).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero.
    pub fn new(day: Day, unpopular_threshold: usize) -> Self {
        assert!(unpopular_threshold > 0, "threshold must be positive");
        DayIndexBuilder {
            day,
            unpopular_threshold,
            new_domains: FastSet::default(),
            domain_hosts: FastMap::default(),
            edge_series: FastMap::default(),
            first_contact: FastMap::default(),
            domain_ips: FastMap::default(),
            edge_http: FastMap::default(),
        }
    }

    /// Absorbs one chunk of reduced contacts (any order). `history` must be
    /// the day's *pre-update* domain history — the streaming pipeline defers
    /// history updates to day end, so the snapshot is stable across chunks.
    /// `ua_history` classifies user agents (pass `None` for DNS sources).
    pub fn push_contacts(
        &mut self,
        contacts: &[Contact],
        history: &DomainHistory,
        ua_history: Option<&UaHistory>,
    ) {
        for c in contacts {
            let edge = (c.host, c.domain);
            self.domain_hosts.entry(c.domain).or_default().insert(c.host);
            match self.first_contact.entry(edge) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if c.ts < *e.get() {
                        e.insert(c.ts);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(c.ts);
                }
            }
            if let Some(ip) = c.dest_ip {
                self.domain_ips.entry(c.domain).or_default().insert(ip);
            }
            let tracked = self.new_domains.contains(&c.domain)
                || (history.is_new(c.domain) && self.new_domains.insert(c.domain));
            if tracked {
                self.edge_series.entry(edge).or_default().push(c.ts);
                self.edge_http.entry(edge).or_default().observe(c, ua_history);
            }
        }
    }

    /// Number of `(host, new-domain)` edges tracked so far — the builder's
    /// dominant memory cost, useful for monitoring long streams.
    pub fn tracked_edge_count(&self) -> usize {
        self.edge_series.len()
    }

    /// Rewrites every domain symbol through `map` — the shard-merge hook
    /// that moves a builder keyed by a shard-local folded interner onto the
    /// canonical table. `map` must be injective over the symbols present
    /// (interners are bijective name↔symbol, so a name-based remap always
    /// is); hosts and timestamps are untouched.
    pub fn remap_domains(&mut self, map: impl Fn(DomainSym) -> DomainSym) {
        self.new_domains = self.new_domains.drain().map(&map).collect();
        self.domain_hosts = self.domain_hosts.drain().map(|(d, v)| (map(d), v)).collect();
        self.edge_series = self.edge_series.drain().map(|((h, d), v)| ((h, map(d)), v)).collect();
        self.first_contact =
            self.first_contact.drain().map(|((h, d), v)| ((h, map(d)), v)).collect();
        self.domain_ips = self.domain_ips.drain().map(|(d, v)| (map(d), v)).collect();
        self.edge_http = self.edge_http.drain().map(|((h, d), v)| ((h, map(d)), v)).collect();
    }

    /// Folds another builder for the same day into this one. Partitioning by
    /// host makes the edge-keyed maps disjoint in practice, but every merge
    /// is written as a true union (append series, min first-contact, summed
    /// HTTP counters) so the result is correct for any split.
    ///
    /// # Panics
    ///
    /// Panics if the builders disagree on the day or threshold.
    pub fn merge(&mut self, other: DayIndexBuilder) {
        assert_eq!(self.day, other.day, "merging builders for different days");
        assert_eq!(
            self.unpopular_threshold, other.unpopular_threshold,
            "merging builders with different thresholds"
        );
        self.new_domains.extend(other.new_domains);
        for (d, hosts) in other.domain_hosts {
            self.domain_hosts.entry(d).or_default().extend(hosts);
        }
        for (edge, series) in other.edge_series {
            self.edge_series.entry(edge).or_default().extend(series);
        }
        for (edge, ts) in other.first_contact {
            match self.first_contact.entry(edge) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if ts < *e.get() {
                        e.insert(ts);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ts);
                }
            }
        }
        for (d, ips) in other.domain_ips {
            self.domain_ips.entry(d).or_default().extend(ips);
        }
        for (edge, http) in other.edge_http {
            self.edge_http.entry(edge).or_default().merge(http);
        }
    }

    /// Applies the unpopularity threshold, prunes series of new-but-popular
    /// domains, sorts every surviving edge series, and produces the
    /// immutable [`DayIndex`].
    pub fn finalize(self) -> DayIndex {
        let DayIndexBuilder {
            day,
            unpopular_threshold,
            new_domains,
            domain_hosts,
            mut edge_series,
            first_contact,
            domain_ips,
            mut edge_http,
        } = self;

        let rare: FastSet<DomainSym> = new_domains
            .iter()
            .copied()
            .filter(|d| domain_hosts.get(d).is_some_and(|h| h.len() < unpopular_threshold))
            .collect();
        edge_series.retain(|(_, d), _| rare.contains(d));
        edge_http.retain(|(_, d), _| rare.contains(d));
        for series in edge_series.values_mut() {
            // Chunks arrive out of order: restore the sorted invariant every
            // beacon-period estimator relies on.
            series.sort_unstable();
        }

        let mut host_rare_domains: FastMap<HostId, BTreeSet<DomainSym>> = FastMap::default();
        for &domain in &rare {
            if let Some(hosts) = domain_hosts.get(&domain) {
                for &host in hosts {
                    host_rare_domains.entry(host).or_default().insert(domain);
                }
            }
        }
        let http_available = edge_http.values().any(|s| s.saw_http);

        let mut index = DayIndex {
            day,
            http_available,
            rare,
            new_count: new_domains.len(),
            domain_hosts,
            host_rare_domains,
            edge_series,
            first_contact,
            domain_ips,
            edge_http,
            sealed: None,
        };
        index.sealed = Some(index.snapshot_uncached());
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::HttpContext;
    use crate::history::DomainHistory;
    use crate::rare::RareSieve;
    use earlybird_logmodel::{DomainInterner, UaInterner};

    struct Fixture {
        domains: DomainInterner,
        uas: UaInterner,
        contacts: Vec<Contact>,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture { domains: DomainInterner::new(), uas: UaInterner::new(), contacts: Vec::new() }
        }

        fn push(
            &mut self,
            ts: u64,
            host: u32,
            domain: &str,
            ip: Option<Ipv4>,
            http: Option<HttpContext>,
        ) {
            self.contacts.push(Contact {
                ts: Timestamp::from_secs(ts),
                host: HostId::new(host),
                domain: self.domains.intern(domain),
                dest_ip: ip,
                http,
            });
        }

        fn index(&mut self, ua_history: Option<&UaHistory>) -> DayIndex {
            self.contacts.sort_by_key(|c| c.ts);
            let rare = RareSieve::new(10).extract(&self.contacts, &DomainHistory::new());
            DayIndex::build(Day::new(0), &self.contacts, rare, ua_history)
        }
    }

    #[test]
    fn bipartite_maps_are_consistent() {
        let mut f = Fixture::new();
        f.push(10, 1, "a.com", None, None);
        f.push(20, 1, "b.com", None, None);
        f.push(30, 2, "a.com", None, None);
        let idx = f.index(None);
        let a = f.domains.get("a.com").unwrap();
        let b = f.domains.get("b.com").unwrap();
        assert_eq!(idx.connectivity(a), 2);
        assert_eq!(idx.connectivity(b), 1);
        assert_eq!(idx.rare_domains_of(HostId::new(1)).unwrap().len(), 2);
        assert!(idx.rare_domains_of(HostId::new(1)).unwrap().contains(&a));
        assert_eq!(idx.rare_count(), 2);
        assert_eq!(idx.rare_edge_count(), 3);
    }

    #[test]
    fn beacon_series_is_sorted_per_edge() {
        let mut f = Fixture::new();
        for i in 0..5 {
            f.push(i * 600, 1, "cc.ru", None, None);
        }
        f.push(42, 2, "cc.ru", None, None);
        let idx = f.index(None);
        let cc = f.domains.get("cc.ru").unwrap();
        let series = idx.beacon_series(HostId::new(1), cc).unwrap();
        assert_eq!(series.len(), 5);
        assert!(series.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(idx.first_contact(HostId::new(1), cc), Some(Timestamp::from_secs(0)));
        assert_eq!(idx.first_contact(HostId::new(2), cc), Some(Timestamp::from_secs(42)));
    }

    #[test]
    fn domain_ips_accumulate() {
        let mut f = Fixture::new();
        f.push(1, 1, "multi.net", Some(Ipv4::new(5, 5, 5, 1)), None);
        f.push(2, 1, "multi.net", Some(Ipv4::new(5, 5, 5, 2)), None);
        f.push(3, 1, "noip.net", None, None);
        let idx = f.index(None);
        let m = f.domains.get("multi.net").unwrap();
        assert_eq!(idx.ips_of(m).unwrap().len(), 2);
        assert!(idx.ips_of(f.domains.get("noip.net").unwrap()).is_none());
    }

    #[test]
    fn http_fractions_require_http_data() {
        let mut f = Fixture::new();
        f.push(1, 1, "a.com", None, None);
        let idx = f.index(None);
        let a = f.domains.get("a.com").unwrap();
        assert!(!idx.has_http());
        assert_eq!(idx.no_ref_fraction(a), None);
        assert_eq!(idx.rare_ua_fraction(a), None);
    }

    #[test]
    fn no_ref_fraction_counts_hosts_without_any_referer() {
        let mut f = Fixture::new();
        // host 1: never a referer; host 2: one of two connections has one.
        f.push(1, 1, "x.io", None, Some(HttpContext { ua: None, referer_present: false }));
        f.push(2, 2, "x.io", None, Some(HttpContext { ua: None, referer_present: false }));
        f.push(3, 2, "x.io", None, Some(HttpContext { ua: None, referer_present: true }));
        let idx = f.index(None);
        let x = f.domains.get("x.io").unwrap();
        assert_eq!(idx.no_ref_fraction(x), Some(0.5));
    }

    #[test]
    fn rare_ua_fraction_uses_history() {
        let mut f = Fixture::new();
        let common = f.uas.intern("Mozilla/5.0");
        let weird = f.uas.intern("Backdoor/1.0");
        // Build a history where `common` is popular and `weird` is not.
        let mut hist = UaHistory::new(3);
        {
            let d = f.domains.intern("warmup.com");
            let mk = |host: u32, ua| Contact {
                ts: Timestamp::from_secs(0),
                host: HostId::new(host),
                domain: d,
                dest_ip: None,
                http: Some(HttpContext { ua: Some(ua), referer_present: true }),
            };
            let warm: Vec<Contact> = (0..5).map(|h| mk(h, common)).collect();
            hist.update(&warm);
        }
        // host 1 uses the rare UA, host 2 the common one, host 3 none at all.
        f.push(1, 1, "x.io", None, Some(HttpContext { ua: Some(weird), referer_present: false }));
        f.push(2, 2, "x.io", None, Some(HttpContext { ua: Some(common), referer_present: false }));
        f.push(3, 3, "x.io", None, Some(HttpContext { ua: None, referer_present: false }));
        let idx = f.index(Some(&hist));
        let x = f.domains.get("x.io").unwrap();
        let frac = idx.rare_ua_fraction(x).unwrap();
        assert!((frac - 2.0 / 3.0).abs() < 1e-12, "hosts 1 and 3 are rare-UA: {frac}");
    }

    /// Builds the same fixture through both constructors and checks every
    /// public accessor agrees.
    fn assert_builder_matches_batch(contacts: &mut [Contact], ua_history: Option<&UaHistory>) {
        let history = DomainHistory::new();
        let threshold = 10;

        let mut sorted = contacts.to_vec();
        sorted.sort_by_key(|c| c.ts);
        let rare = RareSieve::new(threshold).extract(&sorted, &history);
        let batch = DayIndex::build(Day::new(0), &sorted, rare, ua_history);

        // Push in reversed, unevenly chunked order to exercise
        // sort-on-finalize.
        let mut builder = DayIndexBuilder::new(Day::new(0), threshold);
        contacts.reverse();
        for chunk in contacts.chunks(3) {
            builder.push_contacts(chunk, &history, ua_history);
        }
        let streamed = builder.finalize();

        assert_eq!(streamed.new_count(), batch.new_count());
        assert_eq!(streamed.rare_count(), batch.rare_count());
        assert_eq!(streamed.has_http(), batch.has_http());
        assert_eq!(streamed.rare_edge_count(), batch.rare_edge_count());
        let mut batch_domains: Vec<DomainSym> = batch.domains().collect();
        let mut streamed_domains: Vec<DomainSym> = streamed.domains().collect();
        batch_domains.sort_unstable();
        streamed_domains.sort_unstable();
        assert_eq!(streamed_domains, batch_domains);
        for d in batch_domains {
            assert_eq!(streamed.is_rare(d), batch.is_rare(d));
            assert_eq!(streamed.hosts_of(d), batch.hosts_of(d));
            assert_eq!(streamed.ips_of(d), batch.ips_of(d));
            assert_eq!(streamed.no_ref_fraction(d), batch.no_ref_fraction(d));
            assert_eq!(streamed.rare_ua_fraction(d), batch.rare_ua_fraction(d));
            for &h in batch.hosts_of(d).unwrap() {
                assert_eq!(streamed.first_contact(h, d), batch.first_contact(h, d));
                assert_eq!(streamed.beacon_series(h, d), batch.beacon_series(h, d));
                assert_eq!(streamed.rare_domains_of(h), batch.rare_domains_of(h));
            }
        }
    }

    #[test]
    fn builder_matches_batch_index_on_out_of_order_chunks() {
        let mut f = Fixture::new();
        // A beaconing rare edge, a popular-new domain (pruned at finalize),
        // a second host sharing the rare domain, and an IP-carrying domain.
        for i in 0..6 {
            f.push(i * 600 + 17, 1, "cc.ru", Some(Ipv4::new(9, 9, 9, 9)), None);
        }
        f.push(42, 2, "cc.ru", None, None);
        for h in 0..12 {
            f.push(h as u64 * 7, h, "viral.new", None, None);
        }
        f.push(5, 3, "multi.net", Some(Ipv4::new(5, 5, 5, 1)), None);
        f.push(6, 3, "multi.net", Some(Ipv4::new(5, 5, 5, 2)), None);
        assert_builder_matches_batch(&mut f.contacts, None);
    }

    #[test]
    fn builder_matches_batch_index_with_http_context() {
        let mut f = Fixture::new();
        let common = f.uas.intern("Mozilla/5.0");
        let weird = f.uas.intern("Backdoor/1.0");
        let mut hist = UaHistory::new(3);
        {
            let d = f.domains.intern("warmup.com");
            let warm: Vec<Contact> = (0..5)
                .map(|h| Contact {
                    ts: Timestamp::from_secs(0),
                    host: HostId::new(h),
                    domain: d,
                    dest_ip: None,
                    http: Some(HttpContext { ua: Some(common), referer_present: true }),
                })
                .collect();
            hist.update(&warm);
        }
        f.push(1, 1, "x.io", None, Some(HttpContext { ua: Some(weird), referer_present: false }));
        f.push(2, 2, "x.io", None, Some(HttpContext { ua: Some(common), referer_present: true }));
        f.push(3, 3, "x.io", None, Some(HttpContext { ua: None, referer_present: false }));
        f.push(4, 1, "y.io", None, Some(HttpContext { ua: Some(common), referer_present: false }));
        assert_builder_matches_batch(&mut f.contacts, Some(&hist));
    }

    #[test]
    fn builder_http_flag_requires_a_rare_http_edge() {
        // HTTP context on a popular-new domain only: the pruned edges must
        // not leave http_available set (the batch path never saw them).
        let mut f = Fixture::new();
        for h in 0..12 {
            f.push(
                h as u64,
                h,
                "viral.new",
                None,
                Some(HttpContext { ua: None, referer_present: true }),
            );
        }
        f.push(99, 1, "plain.dns", None, None);
        let history = DomainHistory::new();
        let mut builder = DayIndexBuilder::new(Day::new(0), 10);
        builder.push_contacts(&f.contacts, &history, None);
        let idx = builder.finalize();
        assert!(!idx.has_http(), "no rare edge carried HTTP context");
        assert!(idx.is_rare(f.domains.get("plain.dns").unwrap()));
    }

    #[test]
    fn first_contact_tracked_for_non_rare_domains_too() {
        let mut f = Fixture::new();
        // popular.com is contacted by 12 hosts -> not rare under threshold 10.
        for h in 0..12 {
            f.push(h as u64, h, "popular.com", None, None);
        }
        let idx = f.index(None);
        let p = f.domains.get("popular.com").unwrap();
        assert!(!idx.is_rare(p));
        assert_eq!(idx.first_contact(HostId::new(3), p), Some(Timestamp::from_secs(3)));
        assert!(idx.beacon_series(HostId::new(3), p).is_none(), "series kept only for rare edges");
    }
}
