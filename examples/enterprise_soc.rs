//! The enterprise workflow of §VI: train on two weeks of proxy logs, then
//! run both detection modes over February and print Fig. 6-style rows the
//! way a SOC would consume them.
//!
//! Run with: `cargo run --release --example enterprise_soc`

use earlybird::eval::report::render_table;
use earlybird::eval::{AcHarness, Fig6Row};
use earlybird::synthgen::ac::{AcConfig, AcGenerator};

fn print_rows(title: &str, rows: &[Fig6Row]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.threshold),
                r.total().to_string(),
                r.known.to_string(),
                r.new_malicious.to_string(),
                r.suspicious.to_string(),
                r.legitimate.to_string(),
                format!("{:.1}%", r.tdr() * 100.0),
                format!("{:.1}%", r.ndr() * 100.0),
            ]
        })
        .collect();
    println!(
        "{title}\n{}",
        render_table(
            &["thresh", "total", "VT+SOC", "new-mal", "susp", "legit", "TDR", "NDR"],
            &table,
        )
    );
}

fn main() {
    println!("generating two months of synthetic enterprise proxy logs...");
    let world = AcGenerator::new(AcConfig::small()).generate();
    println!(
        "  {} records, {} campaigns, {} IOC seeds",
        world.dataset.total_records(),
        world.campaigns.len(),
        world.intel.ioc.len()
    );

    println!("bootstrapping on January, training models on Feb 1-14...");
    let harness = AcHarness::build(&world).expect("training population suffices");

    let training = harness.training();
    println!(
        "\nC&C regression model (R² = {:.3}, {} samples):",
        training.cc_r_squared, training.cc_samples
    );
    for (name, w, t, sig) in &training.cc_summary {
        println!("  {name:<12} weight {w:+.3}  t {t:+.2}  significant: {sig}");
    }

    print_rows(
        "\nFig. 6(a): C&C detections vs threshold (paper: 114 -> 19, TDR 85% -> 95%)",
        &harness.figure6a(&[0.40, 0.42, 0.44, 0.45, 0.46, 0.48]),
    );
    print_rows(
        "Fig. 6(b): no-hint belief propagation vs T_s (paper: 265 -> 114, TDR 76% -> 85%)",
        &harness.figure6b(0.4, &[0.33, 0.50, 0.65, 0.75, 0.85]),
    );
    print_rows(
        "Fig. 6(c): SOC-hints belief propagation vs T_s (paper: 137 -> 73, TDR 79% -> 95%)",
        &harness.figure6c(&[0.33, 0.37, 0.40, 0.41, 0.45]),
    );

    // The per-day queue a SOC analyst would triage, for one example day.
    if let Some(study) = harness.case_study_hints(10, 0.4) {
        println!("investigation queue for Feb 10 (seeded from the IOC feed):");
        for (name, reason, score, category) in &study.domains {
            println!("  {score:.2}  {name:<36} {category}  via {reason:?}");
        }
    }
}
