//! Cross-crate property-based tests: invariants that must hold for *any*
//! traffic, not just the synthetic scenarios.

use earlybird::core::BpConfig;
use earlybird::engine::{DayBatch, Engine, EngineBuilder, Investigation};
use earlybird::logmodel::{format_dns_line, parse_dns_line, DnsQuery, DnsRecordType, HostMapper};
use earlybird::logmodel::{
    DatasetMeta, Day, DnsDayLog, DomainInterner, HostId, HostKind, Ipv4, Timestamp,
};
use earlybird::pipeline::{Contact, DayIndex, DomainHistory, RareSieve};
use earlybird::timing::{dynamic_bins, intervals_of, AutomationDetector};
use proptest::prelude::*;
use std::sync::Arc;

/// Random small traffic days: up to 12 hosts x 16 domains x ~200 contacts.
fn arb_contacts() -> impl Strategy<Value = Vec<(u64, u32, u8)>> {
    proptest::collection::vec((0u64..86_400, 0u32..12, 0u8..16), 1..200)
}

fn build_day(raw: &[(u64, u32, u8)]) -> (DomainInterner, Vec<Contact>) {
    let folded = DomainInterner::new();
    let mut contacts: Vec<Contact> = raw
        .iter()
        .map(|&(ts, host, dom)| Contact {
            ts: Timestamp::from_secs(ts),
            host: HostId::new(host),
            domain: folded.intern(&format!("d{dom}.example")),
            dest_ip: Some(Ipv4::new(50, dom, dom, 1)),
            http: None,
        })
        .collect();
    contacts.sort_by_key(|c| c.ts);
    (folded, contacts)
}

/// Streams the same random traffic through the Engine facade: one DNS day,
/// no bootstrap period, every day an operation day.
fn build_engine(raw: &[(u64, u32, u8)], max_iterations: usize) -> Engine {
    let domains = Arc::new(DomainInterner::new());
    let mut queries: Vec<DnsQuery> = raw
        .iter()
        .map(|&(ts, host, dom)| DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(host),
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            qname: domains.intern(&format!("d{dom}.example")),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(50, dom, dom, 1)),
        })
        .collect();
    queries.sort_by_key(|q| q.ts);
    let meta = DatasetMeta {
        n_hosts: 12,
        host_kinds: vec![HostKind::Workstation; 12],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 1,
    };
    let mut engine = EngineBuilder::lanl()
        .bp(BpConfig { max_iterations })
        .build(domains, meta)
        .expect("valid config");
    engine.ingest_day(DayBatch::Dns(&DnsDayLog { day: Day::new(0), queries }));
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The index is a faithful bipartite view of the contacts.
    #[test]
    fn index_is_consistent_with_contacts(raw in arb_contacts()) {
        let (folded, contacts) = build_day(&raw);
        let rare = RareSieve::paper_default().extract(&contacts, &DomainHistory::new());
        let index = DayIndex::build(Day::new(0), &contacts, rare, None);

        for c in &contacts {
            // Every contact's host appears in its domain's host set.
            prop_assert!(index.hosts_of(c.domain).unwrap().contains(&c.host));
            // First contact is never later than any contact.
            prop_assert!(index.first_contact(c.host, c.domain).unwrap() <= c.ts);
        }
        // Connectivity sums match: every rare edge appears in both maps.
        for dom in index.rare_domains() {
            for host in index.hosts_of(dom).unwrap() {
                prop_assert!(index.rare_domains_of(*host).unwrap().contains(&dom));
                let series = index.beacon_series(*host, dom).unwrap();
                prop_assert!(series.windows(2).all(|w| w[0] <= w[1]));
            }
        }
        let _ = folded;
    }

    /// Belief propagation (driven through the Engine facade) only ever
    /// labels rare domains (plus the seeds), never shrinks the seed sets,
    /// and terminates within the cap.
    #[test]
    fn bp_invariants(raw in arb_contacts(), seed_host in 0u32..12) {
        let max_iterations = 6;
        let engine = build_engine(&raw, max_iterations);
        let seed = HostId::new(seed_host);
        let out = engine
            .investigate(Day::new(0), Investigation::from_hint_hosts([seed]))
            .expect("day retained")
            .outcome;
        let index = engine.day_index(Day::new(0)).expect("day retained");

        prop_assert!(out.iterations.len() <= max_iterations);
        for d in &out.labeled {
            // Everything labeled (non-seed) must be rare today.
            prop_assert!(index.is_rare(d.domain), "labeled domain must be rare");
        }
        prop_assert!(out.compromised_hosts.contains(&seed), "seed hosts stay compromised");
        // Labeled domains are unique.
        let mut syms: Vec<u32> = out.labeled.iter().map(|d| d.domain.raw()).collect();
        syms.sort_unstable();
        let before = syms.len();
        syms.dedup();
        prop_assert_eq!(before, syms.len());
    }

    /// Dynamic bins conserve mass and keep hubs within distance of members.
    #[test]
    fn dynamic_bins_conserve_mass(intervals in proptest::collection::vec(0u64..10_000, 0..200), w in 0u64..60) {
        let bins = dynamic_bins(&intervals, w);
        let total: u64 = bins.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, intervals.len() as u64);
        // Hubs are distinct beyond the bin width only when later intervals
        // founded them; at minimum every hub is a real interval value.
        for b in &bins {
            prop_assert!(intervals.contains(&b.hub));
        }
    }

    /// The automation detector never fires on fewer than min connections
    /// and is shift-invariant.
    #[test]
    fn detector_shift_invariance(times in proptest::collection::vec(0u64..86_000, 2..40), shift in 0u64..1_000_000) {
        let mut t = times.clone();
        t.sort_unstable();
        let base: Vec<Timestamp> = t.iter().map(|&s| Timestamp::from_secs(s)).collect();
        let shifted: Vec<Timestamp> = t.iter().map(|&s| Timestamp::from_secs(s + shift)).collect();
        let det = AutomationDetector::paper_default();
        prop_assert_eq!(det.evaluate(&base), det.evaluate(&shifted));
        if base.len() < det.min_connections() {
            prop_assert!(det.evaluate(&base).is_none());
        }
        // Intervals are preserved under shift.
        prop_assert_eq!(intervals_of(&base), intervals_of(&shifted));
    }

    /// The DNS log codec round-trips arbitrary well-formed records.
    #[test]
    fn dns_codec_roundtrip(
        ts in 0u64..10_000_000,
        ip_bits in proptest::num::u32::ANY,
        dom in 0u8..50,
        qtype_idx in 0usize..7,
        answer_bits in proptest::option::of(proptest::num::u32::ANY),
    ) {
        let domains = DomainInterner::new();
        let mut hosts = HostMapper::new();
        let src_ip = Ipv4::from_bits(ip_bits);
        let original = DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: hosts.host_for(src_ip),
            src_ip,
            qname: domains.intern(&format!("d{dom}.example.com")),
            qtype: DnsRecordType::ALL[qtype_idx],
            answer: answer_bits.map(Ipv4::from_bits),
        };
        let line = format_dns_line(&original, &domains);
        let parsed = parse_dns_line(&line, &domains, &mut hosts).expect("own output parses");
        prop_assert_eq!(parsed, original);
    }

    /// Rare extraction never returns domains above the host threshold or
    /// domains already in the history.
    #[test]
    fn rare_sieve_bounds(raw in arb_contacts(), known in 0u8..16) {
        let (folded, contacts) = build_day(&raw);
        let mut history = DomainHistory::new();
        history.update_domains([folded.intern(&format!("d{known}.example"))]);
        let rare = RareSieve::new(4).extract(&contacts, &history);
        for dom in rare.iter() {
            prop_assert!(rare.hosts_of(dom).unwrap().len() < 4);
            prop_assert!(history.is_new(dom));
        }
        prop_assert!(rare.new_count() >= rare.len());
    }
}
