//! The AC-style web-proxy dataset generator (§VI).
//!
//! Produces two months of border-proxy logs — January for bootstrap,
//! February for operation — together with the simulated intelligence the
//! enterprise evaluation needs: WHOIS registrations, a VirusTotal oracle
//! with reporting lag, the SOC's IOC feed, and per-domain ground truth.
//!
//! The generator reproduces the traffic phenomena the paper's features key
//! on:
//!
//! * DHCP/VPN address churn and multi-timezone collectors (normalization);
//! * benign browsing with referers and a common user-agent pool, plus
//!   *benign automated* services — ad rotators, toolbars, niche updaters —
//!   that are new, rare, sometimes young-registered and referer-less: the
//!   false-positive pressure visible as the "Legitimate" bars of Fig. 6;
//! * malicious campaigns: generic malware, a beaconing C&C + delivery pair
//!   (the Fig. 7 community), a Zeus-like SOC-seeded cluster with `.org`
//!   second stages (Fig. 8), a short-name `.info` DGA cluster (§VI-C), a
//!   hex `.info` DGA cluster registered only *after* detection (§VI-D), and
//!   a Sality-style cluster sharing the `/logo.gif?` URL pattern.

use crate::campaign::{CampaignPlan, CampaignShape};
use crate::names::{
    benign_domain, dga_hex_info, dga_short_info, malware_ru, pronounceable, ramdo_org,
};
use crate::rng::derive_rng;
use earlybird_intel::{
    CampaignId, GroundTruth, IocFeed, TrueClass, VirusTotalOracle, WhoisRegistry,
};
use earlybird_logmodel::{
    DatasetMeta, Day, DhcpLease, DhcpLog, DomainInterner, HostId, HostKind, HttpMethod, HttpStatus,
    Ipv4, PathInterner, ProxyDataset, ProxyDayLog, ProxyRecord, Timestamp, TzOffset, UaInterner,
    SECONDS_PER_DAY,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The malicious campaign families injected into February.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcCampaignKind {
    /// Generic single/few-domain malware (the bulk).
    Generic,
    /// Fig. 7: beaconing `.ru` C&C plus a delivery pair, several victims.
    BeaconPair,
    /// Fig. 8: Zeus-like C&C (IOC-seeded) with a `.org` second-stage cluster.
    SocCluster,
    /// §VI-C: ten 4–5-character `.info` DGA domains.
    DgaShort,
    /// §VI-D: ten 20-character hex `.info` DGA domains, registered after
    /// their detection day.
    DgaHex,
    /// Sality-style cluster sharing the `/logo.gif?` URL pattern.
    Sality,
}

/// One injected AC campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AcCampaign {
    /// Campaign identifier.
    pub id: CampaignId,
    /// Family.
    pub kind: AcCampaignKind,
    /// February day-of-month (1–28) the campaign runs.
    pub feb_day: u32,
    /// Window day index.
    pub day: Day,
    /// The plan (domains, victims, contacts).
    pub plan: CampaignPlan,
    /// Whether VirusTotal ever reports the campaign's domains.
    pub vt_reported: bool,
    /// Whether the C&C domain is in the SOC IOC feed.
    pub in_ioc: bool,
}

/// The simulated intelligence bundle accompanying the dataset.
#[derive(Clone, Debug, Default)]
pub struct AcIntel {
    /// WHOIS registrations for benign and malicious domains.
    pub whois: WhoisRegistry,
    /// VirusTotal oracle with per-domain report lag.
    pub vt: VirusTotalOracle,
    /// The SOC's IOC feed (seeds for the SOC-hints mode).
    pub ioc: IocFeed,
    /// Ground-truth classes for evaluation.
    pub truth: GroundTruth,
}

/// The generated AC world: dataset + intelligence + campaign answer key.
#[derive(Debug)]
pub struct AcWorld {
    /// Two months of proxy logs with DHCP leases.
    pub dataset: ProxyDataset,
    /// Simulated intelligence.
    pub intel: AcIntel,
    /// All injected campaigns, ordered by day.
    pub campaigns: Vec<AcCampaign>,
    /// The generating configuration.
    pub config: AcConfig,
}

impl AcWorld {
    /// Campaigns running on `day`.
    pub fn campaigns_on(&self, day: Day) -> impl Iterator<Item = &AcCampaign> {
        self.campaigns.iter().filter(move |c| c.day == day)
    }
}

/// Configuration of the AC-style generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AcConfig {
    /// Base seed.
    pub seed: u64,
    /// Internal hosts (workstations + servers).
    pub n_hosts: u32,
    /// Internal servers (ids `0..n_servers`).
    pub n_servers: u32,
    /// Popular benign domain pool size.
    pub popular_domains: usize,
    /// Per-host benign requests per day (uniform range).
    pub requests_per_host_day: (u32, u32),
    /// Fresh benign domains per day.
    pub new_benign_per_day: usize,
    /// Fresh benign *automated* domains per day (ad/toolbar/updater churn).
    pub benign_auto_per_day: usize,
    /// Fraction of benign automated domains with young registrations.
    pub benign_auto_young_frac: f64,
    /// Fresh suspicious (parked/unresolvable) domains per day.
    pub suspicious_per_day: usize,
    /// Generic malicious campaigns per February day (uniform range).
    pub campaigns_per_day: (u32, u32),
    /// Fraction of malicious campaigns VirusTotal ever reports.
    pub vt_known_frac: f64,
    /// VT report lag after campaign day, in days (uniform range).
    pub vt_lag_days: (u32, u32),
    /// Number of IOC seed domains the SOC knows (the paper used 28).
    pub ioc_seed_count: usize,
    /// Common user-agent pool size.
    pub n_common_uas: usize,
    /// User agents per host (uniform range; the paper observed 7–9).
    pub uas_per_host: (usize, usize),
    /// Collector timezone offsets in minutes east of UTC.
    pub tz_offsets: Vec<i32>,
    /// Bootstrap days (January).
    pub bootstrap_days: u32,
    /// Total days (January + February).
    pub total_days: u32,
}

impl AcConfig {
    /// Full default scale (≈1.5 M records over the two months).
    pub fn new(seed: u64) -> Self {
        AcConfig {
            seed,
            n_hosts: 1_000,
            n_servers: 25,
            popular_domains: 3_000,
            requests_per_host_day: (10, 40),
            new_benign_per_day: 220,
            benign_auto_per_day: 15,
            benign_auto_young_frac: 0.2,
            suspicious_per_day: 4,
            campaigns_per_day: (2, 4),
            vt_known_frac: 0.8,
            vt_lag_days: (1, 5),
            ioc_seed_count: 28,
            n_common_uas: 40,
            uas_per_host: (7, 9),
            tz_offsets: vec![0, -300, 60],
            bootstrap_days: 31,
            total_days: 59,
        }
    }

    /// Reduced scale for integration tests.
    pub fn small() -> Self {
        AcConfig {
            n_hosts: 300,
            n_servers: 8,
            popular_domains: 900,
            requests_per_host_day: (6, 18),
            new_benign_per_day: 60,
            benign_auto_per_day: 8,
            suspicious_per_day: 2,
            ..AcConfig::new(11)
        }
    }

    /// Minimal scale for unit tests.
    pub fn tiny() -> Self {
        AcConfig {
            n_hosts: 80,
            n_servers: 4,
            popular_domains: 250,
            requests_per_host_day: (3, 8),
            new_benign_per_day: 15,
            benign_auto_per_day: 4,
            suspicious_per_day: 1,
            campaigns_per_day: (1, 2),
            ioc_seed_count: 8,
            ..AcConfig::new(11)
        }
    }

    /// Maps a February day-of-month to a window day index.
    ///
    /// # Panics
    ///
    /// Panics for days outside `1..=28`.
    pub fn feb_day(&self, day_of_month: u32) -> Day {
        assert!((1..=28).contains(&day_of_month), "invalid February day");
        Day::new(self.bootstrap_days + day_of_month - 1)
    }
}

impl Default for AcConfig {
    fn default() -> Self {
        AcConfig::new(11)
    }
}

/// The AC-style generator.
#[derive(Debug)]
pub struct AcGenerator {
    cfg: AcConfig,
    popular: Vec<String>,
    common_uas: Vec<String>,
    /// Updater/ad-SDK user agents shared across the fleet: individual
    /// automated *domains* churn daily, but the software contacting them is
    /// the same, so these UAs become common during bootstrap (a key
    /// difference from campaign-specific malware UAs).
    updater_uas: Vec<String>,
    host_uas: Vec<Vec<usize>>,
    campaigns: Vec<AcCampaign>,
}

impl AcGenerator {
    /// Prepares the generator: benign pools, per-host UA assignments, and
    /// all February campaigns, deterministically from the seed.
    pub fn new(cfg: AcConfig) -> Self {
        let mut pool_rng = derive_rng(cfg.seed, &[30]);
        let popular: Vec<String> =
            (0..cfg.popular_domains).map(|_| benign_domain(&mut pool_rng)).collect();
        let common_uas: Vec<String> = (0..cfg.n_common_uas)
            .map(|i| format!("Mozilla/5.0 (Corp{}; rv:{}) Gecko", i % 7, 80 + i))
            .collect();
        let updater_uas: Vec<String> =
            (0..8).map(|k| format!("AutoUpdate/{k}.0 (compatible; fleet)")).collect();
        let mut host_uas = Vec::with_capacity(cfg.n_hosts as usize);
        for h in 0..cfg.n_hosts {
            let mut rng = derive_rng(cfg.seed, &[31, h as u64]);
            let n = rng.gen_range(cfg.uas_per_host.0..=cfg.uas_per_host.1);
            let mut set: Vec<usize> = (0..common_uas.len()).collect();
            set.shuffle(&mut rng);
            set.truncate(n);
            host_uas.push(set);
        }
        let campaigns = Self::plan_campaigns(&cfg);
        AcGenerator { cfg, popular, common_uas, updater_uas, host_uas, campaigns }
    }

    /// The configuration.
    pub fn config(&self) -> &AcConfig {
        &self.cfg
    }

    /// The planned campaigns.
    pub fn campaigns(&self) -> &[AcCampaign] {
        &self.campaigns
    }

    fn plan_campaigns(cfg: &AcConfig) -> Vec<AcCampaign> {
        let mut campaigns = Vec::new();
        let mut next_id = 0u32;
        let mut push = |campaigns: &mut Vec<AcCampaign>,
                        kind: AcCampaignKind,
                        feb_day: u32,
                        victims_override: Option<Vec<HostId>>,
                        rng: &mut rand::rngs::StdRng| {
            let id = CampaignId(next_id);
            next_id += 1;
            let day = cfg.feb_day(feb_day);
            let workstations: Vec<HostId> = (cfg.n_servers..cfg.n_hosts).map(HostId::new).collect();
            let (names, n_victims, period): (Vec<String>, usize, u64) = match kind {
                AcCampaignKind::Generic => {
                    let extras = rng.gen_range(0..=2usize);
                    let mut names = vec![malware_ru(rng)];
                    for _ in 0..extras {
                        let syllables = rng.gen_range(4..7);
                        names.push(format!("{}.in", pronounceable(rng, syllables)));
                    }
                    (
                        names,
                        rng.gen_range(1..=3),
                        *[300u64, 600, 1_200, 3_600].choose(rng).expect("non-empty"),
                    )
                }
                AcCampaignKind::BeaconPair => {
                    // usteeptyshehoaboochu.ru + parfumonline.in pair (Fig. 7).
                    let cc = malware_ru(rng);
                    let stem = pronounceable(rng, 4);
                    (vec![cc, format!("{stem}online.in"), format!("neo{stem}online.in")], 3, 120)
                }
                AcCampaignKind::SocCluster => {
                    // xtremesoftnow.ru-like C&C + .org Ramdo cluster (Fig. 8).
                    let mut names = vec![format!("{}softnow.ru", pronounceable(rng, 3))];
                    for _ in 0..7 {
                        names.push(ramdo_org(rng));
                    }
                    (names, rng.gen_range(4..=7), 600)
                }
                AcCampaignKind::DgaShort => {
                    let names: Vec<String> = (0..10).map(|_| dga_short_info(rng)).collect();
                    (names, rng.gen_range(1..=2), 900)
                }
                AcCampaignKind::DgaHex => {
                    let names: Vec<String> = (0..10).map(|_| dga_hex_info(rng)).collect();
                    (names, rng.gen_range(1..=2), 1_200)
                }
                AcCampaignKind::Sality => {
                    let names: Vec<String> = (0..5)
                        .map(|_| {
                            let syllables = rng.gen_range(3..5);
                            format!("{}.biz", pronounceable(rng, syllables))
                        })
                        .collect();
                    (names, rng.gen_range(2..=3), 600)
                }
            };
            let victims: Vec<HostId> = match victims_override {
                Some(v) => v,
                None => workstations.choose_multiple(rng, n_victims).copied().collect(),
            };
            let shape = CampaignShape {
                extra_domains: names.len() - 1,
                beacon_period: period,
                beacon_jitter: 3,
                ..CampaignShape::default()
            };
            let plan = CampaignPlan::plan(rng, id, day, victims, names, shape);
            let vt_reported = match kind {
                AcCampaignKind::DgaShort | AcCampaignKind::DgaHex => false,
                AcCampaignKind::SocCluster | AcCampaignKind::Sality => true,
                _ => rng.gen_bool(cfg.vt_known_frac),
            };
            let in_ioc = matches!(kind, AcCampaignKind::SocCluster);
            campaigns.push(AcCampaign { id, kind, feb_day, day, plan, vt_reported, in_ioc });
        };

        // Showcase campaigns pinned to the paper's case-study days.
        let mut rng = derive_rng(cfg.seed, &[40]);
        push(&mut campaigns, AcCampaignKind::SocCluster, 10, None, &mut rng);
        // The hex-DGA cluster infects (a subset of) the same machines as the
        // IOC-seeded cluster, which is how the SOC-hints mode discovers it.
        let soc_victims = campaigns[0].plan.victims.clone();
        let hex_victims: Vec<HostId> = soc_victims.iter().take(2).copied().collect();
        push(&mut campaigns, AcCampaignKind::BeaconPair, 13, None, &mut rng);
        push(&mut campaigns, AcCampaignKind::Sality, 6, None, &mut rng);
        push(&mut campaigns, AcCampaignKind::DgaShort, 17, None, &mut rng);
        push(&mut campaigns, AcCampaignKind::DgaHex, 10, Some(hex_victims), &mut rng);
        push(&mut campaigns, AcCampaignKind::DgaShort, 24, None, &mut rng);

        // Generic background campaigns every February day.
        for feb in 1..=28u32 {
            let mut rng = derive_rng(cfg.seed, &[41, feb as u64]);
            let n = rng.gen_range(cfg.campaigns_per_day.0..=cfg.campaigns_per_day.1);
            for _ in 0..n {
                push(&mut campaigns, AcCampaignKind::Generic, feb, None, &mut rng);
            }
        }
        campaigns.sort_by_key(|c| (c.day, c.id));
        campaigns
    }

    /// Dataset metadata.
    pub fn meta(&self) -> DatasetMeta {
        let mut kinds = vec![HostKind::Workstation; self.cfg.n_hosts as usize];
        for k in kinds.iter_mut().take(self.cfg.n_servers as usize) {
            *k = HostKind::Server;
        }
        DatasetMeta {
            n_hosts: self.cfg.n_hosts,
            host_kinds: kinds,
            internal_suffixes: vec!["corp.internal".into()],
            bootstrap_days: self.cfg.bootstrap_days,
            total_days: self.cfg.total_days,
        }
    }

    /// Generates the whole world: dataset, DHCP log, and intelligence.
    pub fn generate(&self) -> AcWorld {
        let cfg = &self.cfg;
        let domains = Arc::new(DomainInterner::new());
        let uas = Arc::new(UaInterner::new());
        let paths = Arc::new(PathInterner::new());
        let mut intel = AcIntel::default();

        // Register the benign popular pool: old, long-validity domains.
        {
            let mut rng = derive_rng(cfg.seed, &[50]);
            for name in &self.popular {
                intel.whois.register_aged(
                    name,
                    rng.gen_range(800..8_000),
                    Day::new(cfg.total_days + rng.gen_range(200..2_000)),
                );
                intel.truth.set(name, TrueClass::Benign);
            }
        }

        // Register campaign intelligence.
        for c in &self.campaigns {
            let mut rng = derive_rng(cfg.seed, &[51, c.id.0 as u64]);
            for d in &c.plan.domains {
                intel.truth.set(&d.name, TrueClass::Malicious(c.id));
                match c.kind {
                    AcCampaignKind::DgaHex => {
                        // Registered only days after the campaign ran (§VI-D).
                        let created = c.day + rng.gen_range(3..8u32);
                        intel.whois.register(&d.name, created, created + rng.gen_range(30..90u32));
                    }
                    _ => {
                        if rng.gen_bool(0.1) {
                            intel.whois.register_unparseable(&d.name);
                        } else {
                            let age = rng.gen_range(2..30u32);
                            let created = Day::new(c.day.index().saturating_sub(age));
                            intel.whois.register(
                                &d.name,
                                created,
                                created + rng.gen_range(30..365u32),
                            );
                        }
                    }
                }
                if c.vt_reported {
                    let lag = rng.gen_range(cfg.vt_lag_days.0..=cfg.vt_lag_days.1);
                    intel.vt.add_report(&d.name, c.day + lag);
                }
            }
            if c.in_ioc {
                intel.ioc.add(c.plan.cc_domain(), c.day);
            }
        }

        // Fill the IOC feed up to the configured seed count with VT-known
        // C&C domains (the SOC learns them from external intelligence).
        {
            let mut candidates: Vec<&AcCampaign> =
                self.campaigns.iter().filter(|c| c.vt_reported && !c.in_ioc).collect();
            let mut rng = derive_rng(cfg.seed, &[52]);
            candidates.shuffle(&mut rng);
            let have = intel.ioc.len();
            for c in candidates.into_iter().take(cfg.ioc_seed_count.saturating_sub(have)) {
                intel.ioc.add(c.plan.cc_domain(), c.day);
            }
        }

        // DHCP: every workstation gets a one-day lease per day, with the
        // IP pool rotating so the same address serves different hosts on
        // different days.
        let mut dhcp = DhcpLog::new();
        for day in 0..cfg.total_days {
            for h in 0..cfg.n_hosts {
                let slot = (h as u64 + day as u64 * 17) % cfg.n_hosts as u64;
                let ip =
                    Ipv4::new(10, 8 + (slot >> 8) as u8, (slot & 0xFF) as u8, 1 + (h % 250) as u8);
                dhcp.add(DhcpLease {
                    ip,
                    host: HostId::new(h),
                    start: Day::new(day).start(),
                    end: Day::new(day + 1).start(),
                });
            }
        }

        let mut days = Vec::with_capacity(cfg.total_days as usize);
        for d in 0..cfg.total_days {
            days.push(self.generate_day(&domains, &uas, &paths, &dhcp, &mut intel, Day::new(d)));
        }

        AcWorld {
            dataset: ProxyDataset { domains, uas, paths, days, dhcp, meta: self.meta() },
            intel,
            campaigns: self.campaigns.clone(),
            config: cfg.clone(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_day(
        &self,
        domains: &DomainInterner,
        uas: &UaInterner,
        paths: &PathInterner,
        dhcp: &DhcpLog,
        intel: &mut AcIntel,
        day: Day,
    ) -> ProxyDayLog {
        let cfg = &self.cfg;
        let mut rng = derive_rng(cfg.seed, &[2, day.index() as u64]);
        let mut records = Vec::new();

        let root_path = paths.intern("/");
        let browse_paths: Vec<_> =
            ["/index.html", "/news", "/api/v1/items", "/assets/app.js", "/search?q=x"]
                .iter()
                .map(|p| paths.intern(p))
                .collect();

        // Benign browsing.
        for host in 0..cfg.n_hosts {
            let n = rng.gen_range(cfg.requests_per_host_day.0..=cfg.requests_per_host_day.1);
            for _ in 0..n {
                let ts = Timestamp::from_day_secs(day, browse_second(&mut rng));
                let dom_name = self.zipf_popular(&mut rng).to_owned();
                let referer =
                    rng.gen_bool(0.85).then(|| domains.intern(self.zipf_popular(&mut rng)));
                let ua_pool = &self.host_uas[host as usize];
                let ua = uas.intern(&self.common_uas[ua_pool[rng.gen_range(0..ua_pool.len())]]);
                records.push(self.record(
                    domains,
                    dhcp,
                    ts,
                    host,
                    &dom_name,
                    stable_ip(&dom_name),
                    *browse_paths.choose(&mut rng).expect("non-empty"),
                    Some(ua),
                    referer,
                    HttpStatus::OK,
                ));
            }
        }

        // Fresh benign domains.
        for i in 0..cfg.new_benign_per_day {
            let name = format!("{}{}{}.net", pronounceable(&mut rng, 3), day.index(), i);
            self.register_benign_new(&mut rng, intel, &name, day);
            for _ in 0..rng.gen_range(1..=2u32) {
                let host = rng.gen_range(cfg.n_servers..cfg.n_hosts);
                let ts = Timestamp::from_day_secs(day, browse_second(&mut rng));
                let ua_pool = &self.host_uas[host as usize];
                let ua = uas.intern(&self.common_uas[ua_pool[rng.gen_range(0..ua_pool.len())]]);
                let referer =
                    rng.gen_bool(0.7).then(|| domains.intern(self.zipf_popular(&mut rng)));
                records.push(self.record(
                    domains,
                    dhcp,
                    ts,
                    host,
                    &name,
                    stable_ip(&name),
                    root_path,
                    Some(ua),
                    referer,
                    HttpStatus::OK,
                ));
            }
        }

        // Fresh benign automated domains (ad rotators / toolbars / niche
        // updaters) — the false-positive pressure of Fig. 6.
        for i in 0..cfg.benign_auto_per_day {
            let name = format!("cdn{}{}{}.com", pronounceable(&mut rng, 2), day.index(), i);
            let ua_roll: f64 = rng.gen();
            let niche = (0.72..0.92).contains(&ua_roll);
            // Niche ad-SDK domains skew young (freshly spun-up ad networks);
            // fleet updaters skew old.
            let young_p = if niche { 0.5 } else { cfg.benign_auto_young_frac };
            let young = rng.gen_bool(young_p);
            if young {
                let created = Day::new(day.index().saturating_sub(rng.gen_range(3..40)));
                intel.whois.register(&name, created, created + rng.gen_range(60..400u32));
            } else {
                intel.whois.register_aged(
                    &name,
                    rng.gen_range(200..4_000),
                    Day::new(cfg.total_days + rng.gen_range(100..1_500)),
                );
            }
            intel.truth.set(&name, TrueClass::Benign);
            let updater_ua = if ua_roll < 0.72 {
                // Fleet-wide updater UA: common after bootstrap.
                Some(uas.intern(&self.updater_uas[rng.gen_range(0..self.updater_uas.len())]))
            } else if niche {
                // Niche software on 1-2 machines: a genuinely rare UA — the
                // false-positive lookalikes behind Fig. 6's Legitimate bars.
                Some(uas.intern(&format!("NicheAgent/{}.{}", day.index(), i)))
            } else {
                None // per-host browser UA below
            };
            let n_subs = rng.gen_range(1..=2u32);
            let period = *[300u64, 600, 1_800, 3_600].choose(&mut rng).expect("non-empty");
            for _ in 0..n_subs {
                let host = rng.gen_range(cfg.n_servers..cfg.n_hosts);
                let ua = match updater_ua {
                    Some(u) => Some(u),
                    None => {
                        let pool = &self.host_uas[host as usize];
                        Some(uas.intern(&self.common_uas[pool[rng.gen_range(0..pool.len())]]))
                    }
                };
                // Niche background agents rarely send referers.
                let referer_p = if niche { 0.15 } else { 0.7 };
                let referer =
                    rng.gen_bool(referer_p).then(|| domains.intern(self.zipf_popular(&mut rng)));
                self.emit_beacon(
                    domains,
                    dhcp,
                    &mut records,
                    &mut rng,
                    day,
                    host,
                    &name,
                    period,
                    2,
                    ua,
                    referer,
                    root_path,
                );
            }
        }

        // Suspicious (parked / unresolvable) domains. Half ride along a
        // campaign victim's infection burst (redirect chains through parked
        // infrastructure) — these are the "Suspicious" detections of Fig. 6.
        let burst_anchors: Vec<(u32, u64)> = self
            .campaigns
            .iter()
            .filter(|c| c.day == day)
            .flat_map(|c| {
                c.plan
                    .contacts
                    .iter()
                    .filter(|ct| !ct.beacon)
                    .map(|ct| (ct.host.index(), ct.ts.secs_of_day()))
            })
            .collect();
        for i in 0..cfg.suspicious_per_day {
            let name = format!("{}{}{}.top", pronounceable(&mut rng, 4), day.index(), i);
            let created = Day::new(day.index().saturating_sub(rng.gen_range(1..20)));
            intel.whois.register(&name, created, created + rng.gen_range(30..120u32));
            intel.truth.set(&name, TrueClass::Suspicious);
            let riders: Vec<(u32, Option<u64>)> = if !burst_anchors.is_empty() && rng.gen_bool(0.5)
            {
                let n = rng.gen_range(1..=2usize).min(burst_anchors.len());
                (0..n)
                    .map(|_| {
                        let (h, t) = burst_anchors[rng.gen_range(0..burst_anchors.len())];
                        (h, Some(t))
                    })
                    .collect()
            } else {
                vec![(rng.gen_range(cfg.n_servers..cfg.n_hosts), None)]
            };
            for (host, anchor) in riders {
                for _ in 0..rng.gen_range(1..=3u32) {
                    let sec = match anchor {
                        Some(t) => (t + rng.gen_range(5..90)).min(SECONDS_PER_DAY - 1),
                        None => browse_second(&mut rng),
                    };
                    let ts = Timestamp::from_day_secs(day, sec);
                    records.push(self.record(
                        domains,
                        dhcp,
                        ts,
                        host,
                        &name,
                        stable_ip(&name),
                        root_path,
                        None,
                        None,
                        if rng.gen_bool(0.5) { HttpStatus::NOT_FOUND } else { HttpStatus::OK },
                    ));
                }
            }
        }

        // Campaign traffic.
        let mut mal_rng = derive_rng(cfg.seed, &[3, day.index() as u64]);
        for campaign in self.campaigns.iter().filter(|c| c.day == day) {
            let mal_path = match campaign.kind {
                AcCampaignKind::Sality => paths.intern("/logo.gif?"),
                AcCampaignKind::DgaShort => paths.intern("/tan2.html"),
                _ => paths.intern("/gate.php"),
            };
            // Generic malware varies its cover story (common browser UA,
            // occasional referer); the targeted clusters stay high-signal.
            let (mal_ua, mal_referer) = if campaign.kind == AcCampaignKind::Generic {
                let roll: f64 = mal_rng.gen();
                let ua = if roll < 0.2 {
                    Some(uas.intern(&self.common_uas[mal_rng.gen_range(0..self.common_uas.len())]))
                } else if roll < 0.35 {
                    None
                } else {
                    Some(uas.intern(&format!(
                        "WinHttp/{}.{}",
                        campaign.id.0,
                        mal_rng.gen_range(1..9)
                    )))
                };
                let referer =
                    mal_rng.gen_bool(0.15).then(|| domains.intern(self.zipf_popular(&mut mal_rng)));
                (ua, referer)
            } else {
                let ua = mal_rng.gen_bool(0.7).then(|| {
                    uas.intern(&format!("WinHttp/{}.{}", campaign.id.0, mal_rng.gen_range(1..9)))
                });
                (ua, None)
            };
            for contact in &campaign.plan.contacts {
                let dom = &campaign.plan.domains[contact.domain_idx];
                records.push(self.record(
                    domains,
                    dhcp,
                    contact.ts,
                    contact.host.index(),
                    &dom.name,
                    dom.ips[0],
                    mal_path,
                    mal_ua,
                    mal_referer,
                    HttpStatus::OK,
                ));
            }
        }

        records.sort_by_key(|r| r.ts_local);
        ProxyDayLog { day, records }
    }

    fn register_benign_new(&self, rng: &mut impl Rng, intel: &mut AcIntel, name: &str, day: Day) {
        if rng.gen_bool(0.3) {
            let created = Day::new(day.index().saturating_sub(rng.gen_range(5..60)));
            intel.whois.register(name, created, created + rng.gen_range(90..700u32));
        } else {
            intel.whois.register_aged(
                name,
                rng.gen_range(100..3_000),
                Day::new(self.cfg.total_days + rng.gen_range(100..1_500)),
            );
        }
        intel.truth.set(name, TrueClass::Benign);
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        domains: &DomainInterner,
        dhcp: &DhcpLog,
        ts_utc: Timestamp,
        host: u32,
        domain: &str,
        dest_ip: Ipv4,
        url_path: earlybird_logmodel::PathSym,
        user_agent: Option<earlybird_logmodel::UaSym>,
        referer: Option<earlybird_logmodel::DomainSym>,
        status: HttpStatus,
    ) -> ProxyRecord {
        let tz =
            TzOffset::from_minutes(self.cfg.tz_offsets[host as usize % self.cfg.tz_offsets.len()]);
        let src_ip = self.lease_ip(dhcp, host, ts_utc);
        ProxyRecord {
            ts_local: tz.to_local(ts_utc),
            tz,
            src_ip,
            host: None, // normalization resolves via the lease log
            domain: domains.intern(domain),
            dest_ip,
            method: HttpMethod::Get,
            status,
            url_path,
            user_agent,
            referer,
        }
    }

    fn lease_ip(&self, _dhcp: &DhcpLog, host: u32, ts: Timestamp) -> Ipv4 {
        // Mirror of the lease-construction formula in `generate`.
        let day = ts.day().index() as u64;
        let slot = (host as u64 + day * 17) % self.cfg.n_hosts as u64;
        Ipv4::new(10, 8 + (slot >> 8) as u8, (slot & 0xFF) as u8, 1 + (host % 250) as u8)
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_beacon(
        &self,
        domains: &DomainInterner,
        dhcp: &DhcpLog,
        records: &mut Vec<ProxyRecord>,
        rng: &mut impl Rng,
        day: Day,
        host: u32,
        name: &str,
        period: u64,
        jitter: u64,
        ua: Option<earlybird_logmodel::UaSym>,
        referer: Option<earlybird_logmodel::DomainSym>,
        path: earlybird_logmodel::PathSym,
    ) {
        let start = rng.gen_range(0..6 * 3_600u64);
        let duration = rng.gen_range(3..=12) * 3_600;
        let mut t = start;
        while t < (start + duration).min(SECONDS_PER_DAY) {
            let ts = Timestamp::from_day_secs(day, t);
            records.push(self.record(
                domains,
                dhcp,
                ts,
                host,
                name,
                stable_ip(name),
                path,
                ua,
                referer,
                HttpStatus::OK,
            ));
            let j =
                if jitter == 0 { 0 } else { rng.gen_range(0..=2 * jitter) as i64 - jitter as i64 };
            t = (t as i64 + period as i64 + j).max(t as i64 + 1) as u64;
        }
    }

    fn zipf_popular(&self, rng: &mut impl Rng) -> &str {
        let u: f64 = rng.gen();
        let idx = ((u * u * u) * self.popular.len() as f64) as usize;
        &self.popular[idx.min(self.popular.len() - 1)]
    }
}

fn browse_second(rng: &mut impl Rng) -> u64 {
    if rng.gen_bool(0.8) {
        rng.gen_range(8 * 3_600..18 * 3_600)
    } else {
        rng.gen_range(0..SECONDS_PER_DAY)
    }
}

/// Stable pseudo-random public IP for a benign domain name.
fn stable_ip(name: &str) -> Ipv4 {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    let v = h.finish();
    Ipv4::new(20 + ((v >> 24) % 200) as u8, (v >> 16) as u8, (v >> 8) as u8, v as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn showcase_campaigns_are_planned() {
        let gen = AcGenerator::new(AcConfig::tiny());
        let kinds: Vec<AcCampaignKind> = gen.campaigns().iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&AcCampaignKind::SocCluster));
        assert!(kinds.contains(&AcCampaignKind::BeaconPair));
        assert!(kinds.contains(&AcCampaignKind::Sality));
        assert!(kinds.contains(&AcCampaignKind::DgaHex));
        assert!(kinds.iter().filter(|k| **k == AcCampaignKind::DgaShort).count() >= 2);
    }

    #[test]
    fn soc_cluster_is_ioc_seeded_on_feb_10() {
        let gen = AcGenerator::new(AcConfig::tiny());
        let soc = gen.campaigns().iter().find(|c| c.kind == AcCampaignKind::SocCluster).unwrap();
        assert_eq!(soc.feb_day, 10);
        assert!(soc.in_ioc);
        assert_eq!(soc.plan.domains.len(), 8, "C&C + 7 .org domains");
        assert!(soc.plan.domains[1..].iter().all(|d| d.name.ends_with(".org")));
    }

    #[test]
    fn dga_clusters_are_never_vt_reported() {
        let gen = AcGenerator::new(AcConfig::tiny());
        for c in gen.campaigns() {
            if matches!(c.kind, AcCampaignKind::DgaShort | AcCampaignKind::DgaHex) {
                assert!(!c.vt_reported);
            }
        }
    }

    #[test]
    fn world_has_consistent_intel() {
        let world = AcGenerator::new(AcConfig::tiny()).generate();
        // Every campaign domain is labeled malicious.
        for c in &world.campaigns {
            for d in &c.plan.domains {
                assert!(matches!(world.intel.truth.class_of(&d.name), TrueClass::Malicious(_)));
            }
            // VT reporting matches the flag.
            if c.vt_reported {
                assert!(world.intel.vt.is_ever_reported(c.plan.cc_domain()));
            }
        }
        // Hex DGA domains are registered after their campaign day.
        let hex = world.campaigns.iter().find(|c| c.kind == AcCampaignKind::DgaHex).unwrap();
        for d in &hex.plan.domains {
            let reg = world.intel.whois.registration(&d.name).unwrap();
            assert!(reg.created > hex.day, "registered after detection");
        }
        // The IOC feed is non-trivial.
        assert!(!world.intel.ioc.is_empty());
    }

    #[test]
    fn records_resolve_through_dhcp() {
        let world = AcGenerator::new(AcConfig::tiny()).generate();
        let day = &world.dataset.days[35];
        let mut resolved = 0;
        for r in day.records.iter().take(200) {
            if world.dataset.dhcp.resolve(r.src_ip, r.ts_utc()).is_some() {
                resolved += 1;
            }
        }
        assert!(resolved > 150, "most records must resolve: {resolved}/200");
    }

    #[test]
    fn sality_cluster_shares_url_pattern() {
        let world = AcGenerator::new(AcConfig::tiny()).generate();
        let sality = world.campaigns.iter().find(|c| c.kind == AcCampaignKind::Sality).unwrap();
        let day = world.dataset.day(sality.day).unwrap();
        let logo = world.dataset.paths.get("/logo.gif?").expect("pattern interned");
        let cc = world.dataset.domains.get(sality.plan.cc_domain()).expect("domain seen");
        assert!(
            day.records.iter().any(|r| r.domain == cc && r.url_path == logo),
            "sality contacts use /logo.gif?"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = AcGenerator::new(AcConfig::tiny()).generate();
        let w2 = AcGenerator::new(AcConfig::tiny()).generate();
        assert_eq!(w1.dataset.total_records(), w2.dataset.total_records());
        let d1 = &w1.dataset.days[40].records;
        let d2 = &w2.dataset.days[40].records;
        for (a, b) in d1.iter().zip(d2) {
            assert_eq!(a.ts_local, b.ts_local);
            assert_eq!(a.src_ip, b.src_ip);
            assert_eq!(a.status, b.status);
        }
    }

    #[test]
    fn bootstrap_days_have_no_campaign_traffic() {
        let world = AcGenerator::new(AcConfig::tiny()).generate();
        for c in &world.campaigns {
            assert!(c.day.index() >= world.config.bootstrap_days);
        }
    }
}
