//! # earlybird-obs
//!
//! A zero-dependency, low-overhead metrics + tracing substrate shared by
//! every layer of the pipeline — the engine's stage timings, the store's
//! commit/restore bandwidth, and the serve daemon's per-tenant series all
//! land in one [`MetricsRegistry`] and come back out as a consistent
//! snapshot or a Prometheus text exposition.
//!
//! Design constraints, in order:
//!
//! 1. **Hot paths pay one atomic op.** Handles ([`Counter`], [`Gauge`],
//!    [`Histogram`], [`StageTimer`]) are cheap `Arc`-backed clones that
//!    callers cache once at construction; an increment is a relaxed
//!    `fetch_add` with no lock, no hash lookup, no allocation.
//! 2. **Readers never stop writers.** The registry publishes its entry
//!    list as an immutable snapshot behind an `RwLock<Arc<_>>` (the same
//!    published-snapshot discipline as the interner's read path):
//!    registration — the only mutation — swaps a new list in, while
//!    [`MetricsRegistry::snapshot`] and
//!    [`MetricsRegistry::render_prometheus`] read whichever list is
//!    current and then load plain atomics.
//! 3. **Instrumentation must not change results.** Nothing in this crate
//!    feeds back into detection; a disabled registry
//!    ([`MetricsRegistry::disabled`]) additionally skips the clock reads
//!    in [`Span`]s so the uninstrumented baseline in `perf_smoke` is
//!    honest.
//!
//! Spans: [`MetricsRegistry::span`] / [`StageTimer::start`] time one
//! operation into a fixed-bucket wall-time histogram and, past a
//! configurable threshold, record a structured [`SlowOp`] event into a
//! bounded ring buffer (drained via [`MetricsRegistry::take_slow_ops`]).
//!
//! Metric identity is `(name, sorted label set)`; registering the same
//! identity twice returns a handle to the same cell, so layers wired to a
//! shared registry compose without coordination.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod render;
mod span;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BOUNDS_MICROS};
pub use render::{HistogramSnapshot, MetricsSnapshot, Sample, SampleValue};
pub use span::{SlowOp, Span, StageTimer};
