//! Simulated VirusTotal oracle with reporting lag.
//!
//! The paper queries VirusTotal twice: during *training* ("label it
//! 'reported' if at least one anti-virus engine reports it", §VI-A) and for
//! *validation* three months after detection ("to allow anti-virus and
//! blacklists to catch up", §VI-B). Modeling a per-domain first-report day
//! captures both: a domain can be unreported at detection time and reported
//! at validation time, which is exactly what produces the paper's
//! "new discovery" category.

use earlybird_logmodel::Day;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-domain first-report days, keyed by folded domain name.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VirusTotalOracle {
    first_reported: HashMap<String, Day>,
}

impl VirusTotalOracle {
    /// Creates an oracle with no reports.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that at least one engine reports `domain` starting on `day`.
    /// A later call with an earlier day moves the report earlier.
    pub fn add_report(&mut self, domain: &str, day: Day) {
        self.first_reported
            .entry(domain.to_owned())
            .and_modify(|d| {
                if day < *d {
                    *d = day;
                }
            })
            .or_insert(day);
    }

    /// Whether `domain` is reported by some engine as of `as_of`.
    pub fn is_reported(&self, domain: &str, as_of: Day) -> bool {
        self.first_reported.get(domain).is_some_and(|&d| d <= as_of)
    }

    /// Whether `domain` is *ever* reported within the simulation horizon
    /// (the paper's "three months later" validation pass).
    pub fn is_ever_reported(&self, domain: &str) -> bool {
        self.first_reported.contains_key(domain)
    }

    /// First report day, if any.
    pub fn first_report_day(&self, domain: &str) -> Option<Day> {
        self.first_reported.get(domain).copied()
    }

    /// Number of reported domains.
    pub fn len(&self) -> usize {
        self.first_reported.len()
    }

    /// Whether no domains are reported.
    pub fn is_empty(&self) -> bool {
        self.first_reported.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_visibility_respects_lag() {
        let mut vt = VirusTotalOracle::new();
        vt.add_report("trojan.ru", Day::new(40));
        assert!(!vt.is_reported("trojan.ru", Day::new(35)), "not yet caught up");
        assert!(vt.is_reported("trojan.ru", Day::new(40)));
        assert!(vt.is_ever_reported("trojan.ru"));
        assert!(!vt.is_ever_reported("clean.com"));
    }

    #[test]
    fn earlier_report_wins() {
        let mut vt = VirusTotalOracle::new();
        vt.add_report("x.info", Day::new(50));
        vt.add_report("x.info", Day::new(20));
        vt.add_report("x.info", Day::new(60));
        assert_eq!(vt.first_report_day("x.info"), Some(Day::new(20)));
    }

    #[test]
    fn unknown_domain_never_reported() {
        let vt = VirusTotalOracle::new();
        assert!(!vt.is_reported("nosuch.org", Day::new(100)));
        assert_eq!(vt.first_report_day("nosuch.org"), None);
        assert!(vt.is_empty());
    }
}
