//! A small blocking client for the service API, used by the integration
//! tests, the `serve_client` example, and the loopback benchmark.
//!
//! The client keeps one persistent (keep-alive) connection and
//! transparently reconnects after an I/O failure, so a daemon restart
//! looks like one failed call followed by working ones.

use crate::error::ServeError;
use crate::wire::{
    AlertsPage, FinishAck, InvestigateRequest, ReportsPage, ShutdownAck, SlowOpsPage, SpanAck,
    TenantSpec, TenantsPage,
};
use earlybird_engine::DayReport;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon answered with a typed error envelope.
    Api(ServeError),
    /// The transport failed (connection refused, reset mid-response).
    Io(std::io::Error),
    /// The daemon's bytes were not a well-formed response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Api(e) => write!(f, "service error: {e}"),
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The typed service error, if this failure is one.
    pub fn as_api(&self) -> Option<&ServeError> {
        match self {
            ClientError::Api(e) => Some(e),
            _ => None,
        }
    }
}

/// A blocking client bound to one daemon address.
#[derive(Debug)]
pub struct ServeClient {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl ServeClient {
    /// A client for the daemon at `addr` (connects lazily).
    pub fn new(addr: SocketAddr) -> Self {
        ServeClient { addr, conn: None }
    }

    /// Registers a tenant.
    ///
    /// # Errors
    ///
    /// [`ClientError::Api`] with the daemon's typed envelope, or a
    /// transport/protocol failure.
    pub fn create_tenant(&mut self, name: &str, spec: &TenantSpec) -> Result<(), ClientError> {
        let body = serde_json::to_string(spec).expect("spec serializes");
        self.request::<serde::json::Value>("PUT", &format!("/v1/{name}"), body.as_bytes())?;
        Ok(())
    }

    /// Pushes one span of raw log lines into a tenant's day.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`]; `429` envelopes surface as
    /// [`ClientError::Api`] with code `over_capacity`.
    pub fn push_span(
        &mut self,
        tenant: &str,
        day: u32,
        lines: &str,
    ) -> Result<SpanAck, ClientError> {
        self.request("POST", &format!("/v1/{tenant}/days/{day}/spans"), lines.as_bytes())
    }

    /// Seals a day; the returned ack is durable by contract.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn finish_day(&mut self, tenant: &str, day: u32) -> Result<FinishAck, ClientError> {
        self.request("POST", &format!("/v1/{tenant}/days/{day}/finish"), b"")
    }

    /// All stored reports for a tenant.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn reports(&mut self, tenant: &str) -> Result<ReportsPage, ClientError> {
        self.request("GET", &format!("/v1/{tenant}/reports"), b"")
    }

    /// One day's stored report.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn report(&mut self, tenant: &str, day: u32) -> Result<DayReport, ClientError> {
        self.request("GET", &format!("/v1/{tenant}/days/{day}/report"), b"")
    }

    /// Alerts from the cursor `since` onward.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn alerts(&mut self, tenant: &str, since: u64) -> Result<AlertsPage, ClientError> {
        self.request("GET", &format!("/v1/{tenant}/alerts?since={since}"), b"")
    }

    /// Runs an investigation.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn investigate(
        &mut self,
        tenant: &str,
        req: &InvestigateRequest,
    ) -> Result<earlybird_engine::InvestigationReport, ClientError> {
        let body = serde_json::to_string(req).expect("request serializes");
        self.request("POST", &format!("/v1/{tenant}/investigate"), body.as_bytes())
    }

    /// Lists registered tenants.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn tenants(&mut self) -> Result<TenantsPage, ClientError> {
        self.request("GET", "/v1/tenants", b"")
    }

    /// The daemon's `GET /metrics` Prometheus text exposition, raw.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Protocol`] for a non-200
    /// (the scrape endpoint never answers with a JSON envelope).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let (status, text) = self.exchange("GET", "/metrics", b"")?;
        if status == 200 {
            Ok(text)
        } else {
            Err(ClientError::Protocol(format!("status {status} from /metrics")))
        }
    }

    /// Drains the daemon's slow-operation ring. Each record is delivered
    /// to exactly one caller, so poll from a single place.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn slow_ops(&mut self) -> Result<SlowOpsPage, ClientError> {
        self.request("GET", "/v1/admin/slow-ops", b"")
    }

    /// Requests a graceful drain-and-checkpoint shutdown.
    ///
    /// # Errors
    ///
    /// As for [`ServeClient::create_tenant`].
    pub fn shutdown(&mut self) -> Result<ShutdownAck, ClientError> {
        self.request("POST", "/v1/admin/shutdown", b"")
    }

    fn request<T: serde::Deserialize>(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<T, ClientError> {
        let (status, text) = self.exchange(method, target, body)?;
        if (200..300).contains(&status) {
            serde_json::from_str(&text).map_err(|e| {
                ClientError::Protocol(format!("bad {status} response body for {target}: {e}"))
            })
        } else {
            match ServeError::from_json(status, &text) {
                Ok(err) => Err(ClientError::Api(err)),
                Err(parse) => Err(ClientError::Protocol(format!(
                    "status {status} with non-envelope body: {parse}"
                ))),
            }
        }
    }

    fn exchange(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(u16, String), ClientError> {
        // One transparent retry on a dead pooled connection: the first
        // write after a server restart fails, the reconnect succeeds.
        let pooled = self.conn.is_some();
        match self.try_exchange(method, target, body) {
            Err(ClientError::Io(_)) if pooled => {
                self.conn = None;
                self.try_exchange(method, target, body)
            }
            other => other,
        }
    }

    fn try_exchange(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(u16, String), ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            // Requests are single writes; Nagle would only add latency.
            let _ = stream.set_nodelay(true);
            self.conn = Some(BufReader::new(stream));
        }
        let result =
            Self::exchange_on(self.conn.as_mut().expect("just connected"), method, target, body);
        match result {
            Ok((status, text, close_after)) => {
                if close_after {
                    self.conn = None;
                }
                Ok((status, text))
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn exchange_on(
        conn: &mut BufReader<TcpStream>,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<(u16, String, bool), ClientError> {
        let mut request = format!(
            "{method} {target} HTTP/1.1\r\nHost: earlybird\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        request.extend_from_slice(body);
        conn.get_mut().write_all(&request)?;

        let status_line = read_line(conn)?;
        let status: u16 = status_line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|rest| rest.split(' ').next())
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;

        let mut content_length = 0usize;
        let mut close_after = false;
        loop {
            let line = read_line(conn)?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else { continue };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("bad Content-Length {value:?}")))?;
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                close_after = true;
            }
        }
        let mut body = vec![0u8; content_length];
        conn.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
        Ok((status, text, close_after))
    }
}

fn read_line(conn: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut raw = Vec::new();
    let n = conn.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        )));
    }
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ClientError::Protocol("response head is not UTF-8".into()))
}
