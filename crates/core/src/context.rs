//! The per-day evaluation context handed to detectors and scorers.

use earlybird_intel::{WhoisAnswer, WhoisRegistry};
use earlybird_logmodel::{Day, DomainInterner, DomainSym};
use earlybird_pipeline::DayIndex;

/// Everything a detector needs to evaluate one day: the day's index, the
/// folded-name interner (for WHOIS lookups), and the WHOIS registry with the
/// population-average defaults used when a record is missing or unparseable
/// (§VI-C).
pub struct DayContext<'a> {
    /// The day under analysis.
    pub day: Day,
    /// The day's contact index.
    pub index: &'a DayIndex,
    /// Interner resolving folded domain symbols to names.
    pub folded: &'a DomainInterner,
    /// WHOIS registry, when available (absent for the anonymized LANL data).
    pub whois: Option<&'a WhoisRegistry>,
    /// Default `(DomAge, DomValidity)` substituted for missing WHOIS data.
    pub whois_defaults: (f64, f64),
}

impl<'a> DayContext<'a> {
    /// `(DomAge, DomValidity)` for a folded domain, falling back to the
    /// configured defaults when the registry is absent, the domain is
    /// unknown, or its record is unparseable.
    pub fn whois_features(&self, domain: DomainSym) -> (f64, f64) {
        let Some(whois) = self.whois else {
            return self.whois_defaults;
        };
        let name = self.folded.resolve(domain);
        match whois.lookup(&name, self.day) {
            WhoisAnswer::Known { age_days, validity_days } => (age_days, validity_days),
            WhoisAnswer::Unparseable | WhoisAnswer::NotFound => self.whois_defaults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_pipeline::{DomainHistory, RareSieve};

    #[test]
    fn whois_features_fall_back_to_defaults() {
        let folded = DomainInterner::new();
        let young = folded.intern("young.ru");
        let missing = folded.intern("missing.com");
        let mut whois = WhoisRegistry::new();
        whois.register("young.ru", Day::new(28), Day::new(90));

        let rare = RareSieve::paper_default().extract(&[], &DomainHistory::new());
        let index = DayIndex::build(Day::new(31), &[], rare, None);
        let ctx = DayContext {
            day: Day::new(31),
            index: &index,
            folded: &folded,
            whois: Some(&whois),
            whois_defaults: (400.0, 500.0),
        };
        assert_eq!(ctx.whois_features(young), (3.0, 59.0));
        assert_eq!(ctx.whois_features(missing), (400.0, 500.0));

        let ctx_no_whois = DayContext { whois: None, ..ctx };
        assert_eq!(ctx_no_whois.whois_features(young), (400.0, 500.0));
    }
}
