//! Timing analysis for C&C beacon detection (§IV-C of the DSN'15 paper).
//!
//! Backdoors "connect regularly to the command-and-control center"; this
//! crate detects that regularity from the inter-connection intervals between
//! a host and a domain:
//!
//! 1. [`dynamic_bins`] clusters the intervals with the paper's dynamic
//!    histogram binning (bin width `W`),
//! 2. [`jeffrey_divergence`] compares the resulting histogram to a perfectly
//!    periodic reference ([`periodic_reference`]),
//! 3. [`AutomationDetector`] wraps both behind the `(W, J_T)` parameterization
//!    evaluated in Table II.
//!
//! [`StdDevDetector`] (the approach the paper tried and rejected — "a single
//! outlier could result in high standard deviation") and
//! [`AutocorrelationDetector`] (BotSniffer-style) are included as ablation
//! baselines.
//!
//! # Example
//!
//! ```
//! use earlybird_timing::AutomationDetector;
//! use earlybird_logmodel::Timestamp;
//!
//! // A 10-minute beacon with +-3 s of jitter.
//! let ts: Vec<Timestamp> = (0..12)
//!     .map(|i| Timestamp::from_secs(600 * i + (i % 3)))
//!     .collect();
//! let det = AutomationDetector::paper_default();
//! let ev = det.evaluate(&ts).expect("beacon detected");
//! assert!(ev.period.abs_diff(600) <= det.bin_width());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod detector;
pub mod distance;
pub mod histogram;

pub use baselines::{AutocorrelationDetector, StdDevDetector};
pub use detector::{AutomationDetector, AutomationEvidence, DistanceMetric};
pub use distance::{jeffrey_divergence, l1_distance};
pub use histogram::{dynamic_bins, intervals_of, periodic_reference, Bin, Histogram};
