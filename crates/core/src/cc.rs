//! The C&C communication detector (§IV-C).
//!
//! A rare domain is a potential C&C when (a) at least one host shows
//! *automated* (beacon-like) connections to it, and (b) its feature score
//! clears the threshold `T_c`. Two scoring models are provided:
//!
//! * [`CcModel::Regression`] — the enterprise model: six features combined
//!   by a trained linear regression (Fig. 5 / Fig. 6(a));
//! * [`CcModel::LanlHeuristic`] — the LANL fallback (§V-B): "we consider an
//!   automated domain as potential C&C if there are at least two distinct
//!   hosts communicating with the domain at similar time periods (within 10
//!   seconds)", since registration and HTTP features are unavailable there.

use crate::context::DayContext;
use crate::extract::cc_features;
use earlybird_features::{FeatureScaler, RegressionModel};
use earlybird_logmodel::{DomainSym, HostId};
use earlybird_pipeline::DayIndex;
use earlybird_timing::{AutomationDetector, AutomationEvidence};
use serde::{Deserialize, Serialize};

/// A domain flagged as potential C&C.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CcDetection {
    /// The flagged (folded) domain.
    pub domain: DomainSym,
    /// Model score (regression score, or the automated-host count for the
    /// LANL heuristic).
    pub score: f64,
    /// Hosts with automated connections to the domain, with evidence.
    pub auto_hosts: Vec<(HostId, AutomationEvidence)>,
}

impl CcDetection {
    /// The estimated beacon period (of the first automated host).
    pub fn period(&self) -> Option<u64> {
        self.auto_hosts.first().map(|(_, ev)| ev.period)
    }
}

/// Scoring model for automated domains.
#[derive(Clone, Debug)]
pub enum CcModel {
    /// Trained linear regression over the six C&C features, with min-max
    /// scaling fitted on the training population.
    Regression {
        /// The fitted model (threshold `T_c` inside).
        model: RegressionModel,
        /// The feature scaler fitted alongside.
        scaler: FeatureScaler,
    },
    /// The LANL two-host heuristic: at least `min_hosts` automated hosts
    /// whose beacon periods agree within `period_tolerance_secs`.
    LanlHeuristic {
        /// Minimum automated hosts (2 in the paper).
        min_hosts: usize,
        /// Maximum period disagreement in seconds (10 in the paper).
        period_tolerance_secs: u64,
    },
}

/// The complete C&C detector: automation pass + scoring model.
///
/// Internal plumbing: the daily C&C sweep runs inside
/// `earlybird-engine`'s `Engine::ingest_day` / `Engine::cc_scores`, which
/// also shard it across worker threads.
#[derive(Clone, Debug)]
pub struct CcDetector {
    automation: AutomationDetector,
    model: CcModel,
}

impl CcDetector {
    /// Creates a detector from an automation detector and a scoring model.
    pub fn new(automation: AutomationDetector, model: CcModel) -> Self {
        CcDetector { automation, model }
    }

    /// The LANL-mode detector with the paper's parameters.
    pub fn lanl_default() -> Self {
        CcDetector::new(
            AutomationDetector::paper_default(),
            CcModel::LanlHeuristic { min_hosts: 2, period_tolerance_secs: 10 },
        )
    }

    /// The automation detector in use.
    pub fn automation(&self) -> &AutomationDetector {
        &self.automation
    }

    /// The scoring model in use.
    pub fn model(&self) -> &CcModel {
        &self.model
    }

    /// Hosts with automated connections to `domain`, with evidence.
    pub fn automated_hosts(
        &self,
        ctx: &DayContext<'_>,
        domain: DomainSym,
    ) -> Vec<(HostId, AutomationEvidence)> {
        let Some(hosts) = ctx.index.hosts_of(domain) else {
            return Vec::new();
        };
        hosts
            .iter()
            .filter_map(|&h| {
                let series = ctx.index.beacon_series(h, domain)?;
                self.automation.evaluate(series).map(|ev| (h, ev))
            })
            .collect()
    }

    /// Model score for a domain whose automated hosts are already known
    /// (no threshold applied): the regression score, or the automated-host
    /// count under the LANL heuristic.
    pub fn score_with(
        &self,
        ctx: &DayContext<'_>,
        domain: DomainSym,
        auto_hosts: &[(HostId, AutomationEvidence)],
    ) -> f64 {
        match &self.model {
            CcModel::Regression { model, scaler } => {
                let features = cc_features(ctx, domain, auto_hosts.len());
                model.score(&scaler.transform(&features.to_row()))
            }
            CcModel::LanlHeuristic { .. } => auto_hosts.len() as f64,
        }
    }

    /// The model's detection decision given a score and the automated-host
    /// evidence: threshold for the regression, the agreeing-period cluster
    /// rule for the LANL heuristic.
    pub fn is_detection(&self, score: f64, auto_hosts: &[(HostId, AutomationEvidence)]) -> bool {
        match &self.model {
            CcModel::Regression { model, .. } => score >= model.threshold(),
            CcModel::LanlHeuristic { min_hosts, period_tolerance_secs } => {
                if auto_hosts.len() < *min_hosts {
                    return false;
                }
                // Require a cluster of >= min_hosts hosts with agreeing
                // periods.
                let mut periods: Vec<u64> = auto_hosts.iter().map(|(_, ev)| ev.period).collect();
                periods.sort_unstable();
                periods.windows(*min_hosts).any(|w| w[w.len() - 1] - w[0] <= *period_tolerance_secs)
            }
        }
    }

    /// Evaluates a single rare domain, returning a detection if it is
    /// automated *and* its score clears the model's threshold. This is the
    /// `Detect_C&C` function of Algorithm 1.
    pub fn evaluate(&self, ctx: &DayContext<'_>, domain: DomainSym) -> Option<CcDetection> {
        let auto_hosts = self.automated_hosts(ctx, domain);
        if auto_hosts.is_empty() {
            return None;
        }
        let score = self.score_with(ctx, domain, &auto_hosts);
        self.is_detection(score, &auto_hosts).then_some(CcDetection { domain, score, auto_hosts })
    }

    /// Scores every rare domain of the day, returning all detections sorted
    /// by descending score (the daily C&C pass of §III-E).
    pub fn detect_all(&self, ctx: &DayContext<'_>) -> Vec<CcDetection> {
        let mut out: Vec<CcDetection> =
            ctx.index.rare_domains().filter_map(|d| self.evaluate(ctx, d)).collect();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        out
    }

    /// All automated (host, domain) pairs among the day's rare domains —
    /// the population Table II counts.
    pub fn automated_pairs(
        &self,
        ctx: &DayContext<'_>,
    ) -> Vec<(HostId, DomainSym, AutomationEvidence)> {
        automated_pairs_with(ctx.index, &self.automation)
    }
}

/// All automated `(host, domain, evidence)` pairs among a day's rare
/// domains under an arbitrary beacon detector, sorted by `(domain, host)` —
/// the Table II parameter-sweep population. Model-independent: only the
/// automation detector matters, so sweeps need not construct a full
/// [`CcDetector`].
pub fn automated_pairs_with(
    index: &DayIndex,
    automation: &AutomationDetector,
) -> Vec<(HostId, DomainSym, AutomationEvidence)> {
    let mut out = Vec::new();
    for domain in index.rare_domains() {
        let Some(hosts) = index.hosts_of(domain) else { continue };
        for &host in hosts {
            if let Some(series) = index.beacon_series(host, domain) {
                if let Some(ev) = automation.evaluate(series) {
                    out.push((host, domain, ev));
                }
            }
        }
    }
    out.sort_by_key(|&(h, d, _)| (d, h));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{Day, DomainInterner, Ipv4, Timestamp};
    use earlybird_pipeline::{Contact, DayIndex, DomainHistory, RareSieve};

    struct World {
        folded: DomainInterner,
        contacts: Vec<Contact>,
    }

    impl World {
        fn new() -> Self {
            World { folded: DomainInterner::new(), contacts: Vec::new() }
        }

        fn beacon(&mut self, host: u32, name: &str, period: u64, n: u64, phase: u64) {
            for i in 0..n {
                self.contacts.push(Contact {
                    ts: Timestamp::from_secs(phase + i * period),
                    host: HostId::new(host),
                    domain: self.folded.intern(name),
                    dest_ip: Some(Ipv4::new(80, 1, 2, 3)),
                    http: None,
                });
            }
        }

        fn visits(&mut self, host: u32, name: &str, times: &[u64]) {
            for &t in times {
                self.contacts.push(Contact {
                    ts: Timestamp::from_secs(t),
                    host: HostId::new(host),
                    domain: self.folded.intern(name),
                    dest_ip: None,
                    http: None,
                });
            }
        }

        fn ctx_index(&mut self) -> DayIndex {
            self.contacts.sort_by_key(|c| c.ts);
            let rare = RareSieve::paper_default().extract(&self.contacts, &DomainHistory::new());
            DayIndex::build(Day::new(0), &self.contacts, rare, None)
        }
    }

    fn ctx<'a>(index: &'a DayIndex, folded: &'a DomainInterner) -> DayContext<'a> {
        DayContext { day: Day::new(0), index, folded, whois: None, whois_defaults: (0.0, 0.0) }
    }

    #[test]
    fn lanl_heuristic_needs_two_agreeing_hosts() {
        let mut w = World::new();
        w.beacon(1, "cc.c3", 600, 20, 0);
        w.beacon(2, "cc.c3", 602, 20, 37); // within 10 s of 600
        w.beacon(3, "solo.c3", 600, 20, 0); // single host
        let index = w.ctx_index();
        let ctx = ctx(&index, &w.folded);
        let det = CcDetector::lanl_default();

        let cc = w.folded.get("cc.c3").unwrap();
        let solo = w.folded.get("solo.c3").unwrap();
        assert!(det.evaluate(&ctx, cc).is_some());
        assert!(det.evaluate(&ctx, solo).is_none(), "one host is not enough in LANL mode");
    }

    #[test]
    fn lanl_heuristic_rejects_disagreeing_periods() {
        let mut w = World::new();
        w.beacon(1, "upd.c3", 1800, 20, 0);
        w.beacon(2, "upd.c3", 3600, 10, 11); // different cadence
        let index = w.ctx_index();
        let ctx = ctx(&index, &w.folded);
        let det = CcDetector::lanl_default();
        assert!(det.evaluate(&ctx, w.folded.get("upd.c3").unwrap()).is_none());
    }

    #[test]
    fn non_automated_domain_is_never_cc() {
        let mut w = World::new();
        w.visits(1, "web.c3", &[10, 450, 470, 9_000, 15_000]);
        w.visits(2, "web.c3", &[99, 5_000, 5_003, 30_000, 31_234]);
        let index = w.ctx_index();
        let ctx = ctx(&index, &w.folded);
        let det = CcDetector::lanl_default();
        assert!(det.evaluate(&ctx, w.folded.get("web.c3").unwrap()).is_none());
        assert!(det.automated_pairs(&ctx).is_empty());
    }

    #[test]
    fn detect_all_sorts_by_score() {
        let mut w = World::new();
        w.beacon(1, "a.c3", 600, 20, 0);
        w.beacon(2, "a.c3", 600, 20, 7);
        w.beacon(3, "b.c3", 300, 30, 0);
        w.beacon(4, "b.c3", 300, 30, 5);
        w.beacon(5, "b.c3", 303, 30, 9);
        let index = w.ctx_index();
        let ctx = ctx(&index, &w.folded);
        let det = CcDetector::lanl_default();
        let all = det.detect_all(&ctx);
        assert_eq!(all.len(), 2);
        assert!(all[0].score >= all[1].score);
        assert_eq!(all[0].domain, w.folded.get("b.c3").unwrap(), "3 hosts beats 2");
        assert!(all[0].period().is_some());
    }

    #[test]
    fn regression_model_thresholds_scores() {
        use earlybird_features::{LinearRegression, CC_FEATURE_NAMES};
        // Train a toy model where the label is driven by NoRef.
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let no_ref = if i % 2 == 0 { 1.0 } else { 0.0 };
                vec![1.0, 1.0, no_ref, 0.5, 100.0, 100.0]
            })
            .collect();
        let y: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let scaler = FeatureScaler::fit(&xs).unwrap();
        let scaled = scaler.transform_all(&xs);
        // Constant features collapse to zero columns under scaling; ridge
        // keeps the toy system well-posed.
        let fit = LinearRegression::fit_ridge(&scaled, &y, 1e-6).unwrap();
        let model = RegressionModel::new(&CC_FEATURE_NAMES, fit, 0.5);

        let mut w = World::new();
        // Automated single-host beacon, no HTTP context -> no_ref = 0 -> score ~0.
        w.beacon(1, "low.ru", 600, 20, 0);
        let index = w.ctx_index();
        let ctx = ctx(&index, &w.folded);
        let det = CcDetector::new(
            AutomationDetector::paper_default(),
            CcModel::Regression { model, scaler },
        );
        assert!(
            det.evaluate(&ctx, w.folded.get("low.ru").unwrap()).is_none(),
            "score below threshold must not detect"
        );
        // Single automated host *is* enough in regression mode if the score
        // clears the bar — verified by the pair count being non-empty while
        // the evaluation stays threshold-driven.
        assert_eq!(det.automated_pairs(&ctx).len(), 1);
    }
}
