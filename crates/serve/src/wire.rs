//! The JSON request/response bodies of the service API, as typed structs
//! shared by the daemon and the [`crate::client`] — one definition per
//! shape, so the two sides cannot drift.
//!
//! Span payloads are **not** JSON: `POST .../spans` carries raw
//! tab-separated log lines (the `earlybird_logmodel::codec` interchange
//! format) as `text/plain`, which is what keeps the service ingest path
//! within a small constant of the library path.

use crate::error::ServeError;
use earlybird_engine::{Engine, EngineBuilder, Investigation};
use earlybird_logmodel::{DatasetMeta, Day, HostId, HostKind};
use serde::{Deserialize, Serialize};

/// `PUT /v1/{tenant}` body: everything needed to build (and later
/// restore) a tenant's engine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Number of internal hosts.
    pub n_hosts: u32,
    /// Per-host kinds (`"workstation"` / `"server"`), indexed by host id;
    /// hosts beyond the list default to workstations.
    pub host_kinds: Vec<String>,
    /// Domain suffixes internal to the enterprise (dropped at reduction).
    pub internal_suffixes: Vec<String>,
    /// Bootstrap (profiling-only) days at the start of the window.
    pub bootstrap_days: u32,
    /// Total days in the observation window.
    pub total_days: u32,
    /// Run belief propagation from each day's C&C detections at ingest.
    pub auto_investigate: bool,
    /// SOC seed (IOC) domain names.
    pub soc_seeds: Vec<String>,
    /// Keep only the newest N operation days investigable (0 = keep all).
    pub retain_days: u64,
}

impl TenantSpec {
    /// A LANL-shaped spec with `n_hosts` workstations and no options.
    pub fn lanl(n_hosts: u32, bootstrap_days: u32, total_days: u32) -> Self {
        TenantSpec {
            n_hosts,
            host_kinds: Vec::new(),
            internal_suffixes: Vec::new(),
            bootstrap_days,
            total_days,
            auto_investigate: false,
            soc_seeds: Vec::new(),
            retain_days: 0,
        }
    }

    /// The dataset metadata this spec describes.
    ///
    /// # Errors
    ///
    /// `400 bad_request` for an unknown host kind.
    pub fn dataset_meta(&self) -> Result<DatasetMeta, ServeError> {
        let mut kinds = Vec::with_capacity(self.n_hosts as usize);
        for (i, kind) in self.host_kinds.iter().enumerate() {
            kinds.push(match kind.as_str() {
                "workstation" => HostKind::Workstation,
                "server" => HostKind::Server,
                other => {
                    return Err(ServeError::bad_request(format!(
                        "host_kinds[{i}] is {other:?}; expected \"workstation\" or \"server\""
                    )))
                }
            });
        }
        kinds.resize(self.n_hosts as usize, HostKind::Workstation);
        Ok(DatasetMeta {
            n_hosts: self.n_hosts,
            host_kinds: kinds,
            internal_suffixes: self.internal_suffixes.clone(),
            bootstrap_days: self.bootstrap_days,
            total_days: self.total_days,
        })
    }

    /// An [`EngineBuilder`] carrying this spec's options (LANL pipeline
    /// defaults; the caller attaches sinks and builds).
    pub fn builder(&self) -> EngineBuilder {
        let mut b = EngineBuilder::lanl()
            .auto_investigate(self.auto_investigate)
            .soc_seeds(self.soc_seeds.iter().cloned());
        if self.retain_days > 0 {
            b = b.retain_days(self.retain_days as usize);
        }
        b
    }
}

/// `POST .../spans` response: what the engine absorbed so far this day.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanAck {
    /// The day pushed into.
    pub day: u32,
    /// Records accumulated for the day so far (0 for duplicate replays).
    pub records_pushed: u64,
    /// Parse failures in this span.
    pub span_parse_errors: u64,
    /// Whether the day was already ingested (the span was a no-op).
    pub duplicate: bool,
}

/// `POST .../finish` response: the day's report plus its durability
/// receipt — a `200` means the store commit completed *before* this
/// response was written.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FinishAck {
    /// The sealed day's full report (alerts included, in delivery order).
    pub report: earlybird_engine::DayReport,
    /// Store manifest generation after the commit (unchanged for
    /// duplicate replays, which write nothing).
    pub generation: u64,
    /// Whether this response is backed by a completed store commit.
    /// Always `true` on `200`; duplicates are durable from their first
    /// finish.
    pub durable: bool,
}

/// `GET .../alerts?since=N` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AlertsPage {
    /// Alerts with `sequence >= since`, in sequence order.
    pub alerts: Vec<earlybird_engine::Alert>,
    /// Pass this as the next `since` to read only newer alerts.
    pub next_since: u64,
}

/// `GET .../reports` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportsPage {
    /// Stored (counters-only) reports, ascending by day.
    pub reports: Vec<earlybird_engine::DayReport>,
}

/// `POST .../investigate` body: one belief-propagation request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvestigateRequest {
    /// The retained day to investigate.
    pub day: u32,
    /// Seed mode: `"hint_hosts"`, `"seed_names"`, or `"no_hint"`.
    pub mode: String,
    /// Seed host ids (`hint_hosts` mode).
    pub hosts: Vec<u32>,
    /// Seed domain names (`seed_names` mode).
    pub names: Vec<String>,
    /// Override for the similarity threshold `T_s` (ignored when `null`).
    pub sim_threshold: Option<f64>,
    /// Override for whether seeds count as detections.
    pub count_seeds: Option<bool>,
}

impl InvestigateRequest {
    /// A `no_hint` request for `day`.
    pub fn no_hint(day: u32) -> Self {
        InvestigateRequest {
            day,
            mode: "no_hint".into(),
            hosts: Vec::new(),
            names: Vec::new(),
            sim_threshold: None,
            count_seeds: None,
        }
    }

    /// A `hint_hosts` request.
    pub fn hint_hosts(day: u32, hosts: impl IntoIterator<Item = u32>) -> Self {
        InvestigateRequest {
            hosts: hosts.into_iter().collect(),
            mode: "hint_hosts".into(),
            ..Self::no_hint(day)
        }
    }

    /// A `seed_names` request.
    pub fn seed_names<I: IntoIterator<Item = S>, S: Into<String>>(day: u32, names: I) -> Self {
        InvestigateRequest {
            names: names.into_iter().map(Into::into).collect(),
            mode: "seed_names".into(),
            ..Self::no_hint(day)
        }
    }

    /// The engine-level investigation this request describes.
    ///
    /// # Errors
    ///
    /// `400 bad_request` for an unknown mode.
    pub fn to_investigation(&self) -> Result<Investigation, ServeError> {
        let mut inv = match self.mode.as_str() {
            "hint_hosts" => {
                Investigation::from_hint_hosts(self.hosts.iter().map(|&h| HostId::new(h)))
            }
            "seed_names" => Investigation::from_seed_names(self.names.iter().cloned()),
            "no_hint" => Investigation::no_hint(),
            other => {
                return Err(ServeError::bad_request(format!(
                "unknown investigation mode {other:?}; expected hint_hosts, seed_names, or no_hint"
            )))
            }
        };
        if let Some(t) = self.sim_threshold {
            inv = inv.sim_threshold(t);
        }
        if let Some(c) = self.count_seeds {
            inv = inv.count_seeds(c);
        }
        Ok(inv)
    }
}

/// One row of `GET /v1/tenants`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Tenant name (the store scope it owns).
    pub name: String,
    /// Days with a stored report.
    pub days_ingested: u64,
    /// Days currently open for span pushes.
    pub open_days: u64,
    /// The tenant's current alert cursor (next sequence to be assigned
    /// a position in the log).
    pub next_alert_sequence: u64,
    /// Log lines this daemon rejected while parsing the tenant's spans
    /// (the process-lifetime `serve_span_parse_errors_total` counter; it
    /// resets on restart, unlike `days_ingested`).
    pub span_parse_errors: u64,
    /// Store GC deletions that failed for this tenant
    /// (`store_gc_failures_total`) — the objects leak until the next
    /// open quarantines them; a growing count wants an operator.
    pub gc_failures: u64,
}

/// `GET /v1/tenants` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantsPage {
    /// All registered tenants, ascending by name.
    pub tenants: Vec<TenantSummary>,
}

/// One drained slow-operation record (`GET /v1/admin/slow-ops`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlowOpWire {
    /// The stage that stalled (`engine_stage_micros` label, e.g. `parse`).
    pub op: String,
    /// How long the operation took.
    pub micros: u64,
    /// The threshold it exceeded to land in the ring.
    pub threshold_micros: u64,
}

impl From<earlybird_obs::SlowOp> for SlowOpWire {
    fn from(op: earlybird_obs::SlowOp) -> Self {
        SlowOpWire { op: op.op, micros: op.micros, threshold_micros: op.threshold_micros }
    }
}

/// `GET /v1/admin/slow-ops` response. Reading drains the daemon's
/// slow-op ring: each record is delivered to exactly one poller.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlowOpsPage {
    /// Records drained by this request, oldest first.
    pub slow_ops: Vec<SlowOpWire>,
}

/// `POST /v1/admin/shutdown` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShutdownAck {
    /// Tenants whose state was checkpointed during the drain.
    pub tenants_checkpointed: u64,
    /// Open (unfinished) days dropped across all tenants. Dropped spans
    /// were never acked durable; re-push them after restart.
    pub open_days_dropped: u64,
}

/// Parses a `{day}` path segment.
///
/// # Errors
///
/// `400 bad_request` for anything but a `u32`.
pub fn parse_day(segment: &str) -> Result<Day, ServeError> {
    segment
        .parse::<u32>()
        .map(Day::new)
        .map_err(|_| ServeError::bad_request(format!("bad day index {segment:?} (expected a u32)")))
}

// Compile-time proof that the engine (and an open day's state) can be
// shared across the daemon's request threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<Engine>();
    assert_send::<earlybird_engine::DayState>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_spec_round_trips_and_builds_meta() {
        let mut spec = TenantSpec::lanl(4, 2, 10);
        spec.host_kinds = vec!["workstation".into(), "server".into()];
        spec.internal_suffixes = vec!["corp.example".into()];
        spec.soc_seeds = vec!["evil.example".into()];
        let json = serde_json::to_string(&spec).unwrap();
        let back: TenantSpec = serde_json::from_str(&json).unwrap();
        let meta = back.dataset_meta().unwrap();
        assert_eq!(meta.n_hosts, 4);
        assert_eq!(
            meta.host_kinds,
            vec![
                HostKind::Workstation,
                HostKind::Server,
                HostKind::Workstation,
                HostKind::Workstation,
            ]
        );
        assert_eq!(meta.internal_suffixes, vec!["corp.example".to_string()]);

        spec.host_kinds = vec!["toaster".into()];
        let err = spec.dataset_meta().unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn investigate_request_maps_modes() {
        assert!(InvestigateRequest::no_hint(3).to_investigation().is_ok());
        assert!(InvestigateRequest::hint_hosts(3, [0, 2]).to_investigation().is_ok());
        assert!(InvestigateRequest::seed_names(3, ["x.example"]).to_investigation().is_ok());
        let mut bad = InvestigateRequest::no_hint(3);
        bad.mode = "tarot".into();
        assert_eq!(bad.to_investigation().unwrap_err().code, "bad_request");
    }

    #[test]
    fn day_segments_parse_strictly() {
        assert_eq!(parse_day("17").unwrap(), Day::new(17));
        assert!(parse_day("-1").is_err());
        assert!(parse_day("day3").is_err());
        assert!(parse_day("").is_err());
    }
}
