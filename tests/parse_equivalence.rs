//! Property tests pinning the vectorized interchange parsers to the
//! behavior of the split-based parsers they replaced.
//!
//! The reference implementations below are verbatim ports of the original
//! `line.split('\t').collect::<Vec<_>>()` + `str::parse` code (and the
//! original `split('.')` IPv4 grammar). For any input line — well-formed,
//! malformed, or a byte-level mutation of a well-formed one — the shipping
//! parsers must produce the identical `Ok` record or the identical
//! `ParseLogError`, and the span parsers must match the per-line reference
//! record for record and error for error, including symbol numbering.

use earlybird::logmodel::{
    parse_dns_line_unassigned, parse_dns_span, parse_proxy_line, parse_proxy_span, payload_line,
    DnsQuery, DnsRecordType, DomainInterner, DomainSym, HostId, HttpMethod, HttpStatus, Ipv4,
    ParseLogError, ParsedChunk, PathInterner, ProxyRecord, Timestamp, TzOffset, UaInterner,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Reference implementations: the pre-vectorization parsers, ported verbatim.
// ---------------------------------------------------------------------------

fn err(field: usize, reason: String) -> ParseLogError {
    ParseLogError { field, reason }
}

fn qtype_from_str(s: &str) -> Option<DnsRecordType> {
    Some(match s {
        "A" => DnsRecordType::A,
        "AAAA" => DnsRecordType::Aaaa,
        "CNAME" => DnsRecordType::Cname,
        "MX" => DnsRecordType::Mx,
        "TXT" => DnsRecordType::Txt,
        "PTR" => DnsRecordType::Ptr,
        "SRV" => DnsRecordType::Srv,
        _ => return None,
    })
}

fn method_from_str(s: &str) -> Option<HttpMethod> {
    Some(match s {
        "GET" => HttpMethod::Get,
        "POST" => HttpMethod::Post,
        "HEAD" => HttpMethod::Head,
        "CONNECT" => HttpMethod::Connect,
        "PUT" => HttpMethod::Put,
        _ => return None,
    })
}

fn reference_dns_line(line: &str, domains: &DomainInterner) -> Result<DnsQuery, ParseLogError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 5 {
        return Err(err(fields.len(), "expected 5 tab-separated fields".into()));
    }
    let ts = fields[0].parse::<u64>().map_err(|e| err(0, format!("timestamp: {e}")))?;
    let src_ip: Ipv4 = fields[1].parse().map_err(|e| err(1, format!("src ip: {e}")))?;
    if fields[2].is_empty() {
        return Err(err(2, "empty qname".into()));
    }
    let qtype = qtype_from_str(fields[3]).ok_or_else(|| err(3, "unknown qtype".into()))?;
    let answer = match fields[4] {
        "-" => None,
        ip => Some(ip.parse().map_err(|e| err(4, format!("answer ip: {e}")))?),
    };
    Ok(DnsQuery {
        ts: Timestamp::from_secs(ts),
        src: HostId::new(0),
        src_ip,
        qname: domains.intern(fields[2]),
        qtype,
        answer,
    })
}

fn reference_proxy_line(
    line: &str,
    domains: &DomainInterner,
    uas: &UaInterner,
    paths: &PathInterner,
) -> Result<ProxyRecord, ParseLogError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 10 {
        return Err(err(fields.len(), "expected 10 tab-separated fields".into()));
    }
    let ts_local = fields[0].parse::<u64>().map_err(|e| err(0, format!("timestamp: {e}")))?;
    let tz_minutes = fields[1].parse::<i32>().map_err(|e| err(1, format!("tz offset: {e}")))?;
    if tz_minutes.abs() > 18 * 60 {
        return Err(err(1, "tz offset out of range".into()));
    }
    let src_ip: Ipv4 = fields[2].parse().map_err(|e| err(2, format!("src ip: {e}")))?;
    if fields[3].is_empty() {
        return Err(err(3, "empty domain".into()));
    }
    let dest_ip: Ipv4 = fields[4].parse().map_err(|e| err(4, format!("dest ip: {e}")))?;
    let method = method_from_str(fields[5]).ok_or_else(|| err(5, "unknown method".into()))?;
    let status = fields[6].parse::<u16>().map_err(|e| err(6, format!("status: {e}")))?;
    if fields[7].is_empty() {
        return Err(err(7, "empty path".into()));
    }
    Ok(ProxyRecord {
        ts_local: Timestamp::from_secs(ts_local),
        tz: TzOffset::from_minutes(tz_minutes),
        src_ip,
        host: None,
        domain: domains.intern(fields[3]),
        dest_ip,
        method,
        status: HttpStatus(status),
        url_path: paths.intern(fields[7]),
        user_agent: match fields[8] {
            "-" => None,
            ua => Some(uas.intern(ua)),
        },
        referer: match fields[9] {
            "-" => None,
            r => Some(domains.intern(r)),
        },
    })
}

/// The original `split('.')`-based dotted-quad grammar; `None` = reject.
fn reference_ipv4(s: &str) -> Option<Ipv4> {
    let mut octets = [0u8; 4];
    let mut parts = s.split('.');
    for slot in &mut octets {
        let part = parts.next()?;
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        *slot = part.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    let [a, b, c, d] = octets;
    Some(Ipv4::new(a, b, c, d))
}

// ---------------------------------------------------------------------------
// Input generation: lines assembled from an adversarial token pool, plus
// byte-level mutations of known-good lines.
// ---------------------------------------------------------------------------

/// Field values that probe every validation branch: valid values for each
/// position, off-by-one invalid neighbors, overflow, signs, whitespace,
/// non-ASCII, and strings valid for a *different* field.
const TOKENS: &[&str] = &[
    "",
    "-",
    "--",
    "86520",
    "0",
    "007",
    "+42",
    "-42",
    "18446744073709551615",
    "18446744073709551616",
    " 1",
    "1 ",
    "٣",
    "10.0.0.17",
    "191.146.166.145",
    "256.1.2.3",
    "1.2.3",
    "1.2.3.4.5",
    "01.02.03.04",
    "1..2.3",
    "evil.ru",
    "a",
    "news.nbc.com",
    "héllo.example",
    "A",
    "AAAA",
    "CNAME",
    "MX",
    "TXT",
    "PTR",
    "SRV",
    "ZZZ",
    "a ",
    "GET",
    "POST",
    "HEAD",
    "CONNECT",
    "PUT",
    "FROB",
    "get",
    "200",
    "404",
    "65535",
    "65536",
    "-300",
    "1081",
    "-1081",
    "/",
    "/gate.php",
    "Mozilla/5.0 (Windows NT 6.1)",
    "WinHttp/1.0",
    "#x",
];

const DNS_TEMPLATE: &str = "86520\t10.0.0.17\tevil.ru\tA\t191.146.166.145";
const PROXY_TEMPLATE: &str =
    "86520\t-300\t10.8.0.4\tcc.ru\t191.1.2.3\tGET\t200\t/gate.php\tWinHttp/1.0\t-";

/// A line of `codes.len()` tab-separated fields drawn from [`TOKENS`].
fn line_from_codes(codes: &[usize]) -> String {
    codes.iter().map(|&c| TOKENS[c % TOKENS.len()]).collect::<Vec<_>>().join("\t")
}

/// Applies `(op, pos, byte)` edits — replace / delete / insert — to a
/// template, keeping only edits that leave the line valid UTF-8.
fn mutate(template: &str, edits: &[(u8, usize, u8)]) -> String {
    let mut bytes = template.as_bytes().to_vec();
    for &(op, pos, byte) in edits {
        if bytes.is_empty() {
            break;
        }
        let pos = pos % bytes.len();
        let byte = byte % 0x80;
        match op % 3 {
            0 => bytes[pos] = byte,
            1 => {
                bytes.remove(pos);
            }
            _ => bytes.insert(pos, byte),
        }
        if std::str::from_utf8(&bytes).is_err() {
            return template.to_string();
        }
    }
    String::from_utf8(bytes).expect("checked after every edit")
}

/// Asserts one batch of DNS lines parses identically through the reference
/// per-line parser and both shipping parsers (per-line and span), using a
/// fresh interner per parser so symbol numbering is directly comparable.
fn assert_dns_equivalent(lines: &[String]) {
    let ref_domains = DomainInterner::new();
    let new_domains = DomainInterner::new();
    let span_domains = DomainInterner::new();

    let mut ref_records = Vec::new();
    let mut ref_errors = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(line) = payload_line(line) else { continue };
        match reference_dns_line(line, &ref_domains) {
            Ok(q) => ref_records.push(q),
            Err(e) => ref_errors.push((i + 1, e)),
        }
        // Per-line parser must agree exactly, including error values.
        assert_eq!(
            reference_dns_line(line, &ref_domains),
            parse_dns_line_unassigned(line, &new_domains),
            "line {:?}",
            line
        );
    }

    let mut chunk = ParsedChunk::default();
    let payload = lines.iter().enumerate().filter_map(|(i, l)| payload_line(l).map(|p| (i + 1, p)));
    parse_dns_span(payload, &span_domains, &mut chunk);
    assert_eq!(chunk.records, ref_records);
    assert_eq!(chunk.errors, ref_errors);
    for q in &chunk.records {
        assert_eq!(span_domains.resolve(q.qname), ref_domains.resolve(q.qname));
    }
}

/// Proxy analogue of [`assert_dns_equivalent`] across all three interners.
fn assert_proxy_equivalent(lines: &[String]) {
    let ref_pool = (DomainInterner::new(), UaInterner::new(), PathInterner::new());
    let new_pool = (DomainInterner::new(), UaInterner::new(), PathInterner::new());
    let span_pool = (DomainInterner::new(), UaInterner::new(), PathInterner::new());

    let mut ref_records = Vec::new();
    let mut ref_errors = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(line) = payload_line(line) else { continue };
        match reference_proxy_line(line, &ref_pool.0, &ref_pool.1, &ref_pool.2) {
            Ok(r) => ref_records.push(r),
            Err(e) => ref_errors.push((i + 1, e)),
        }
        assert_eq!(
            reference_proxy_line(line, &ref_pool.0, &ref_pool.1, &ref_pool.2),
            parse_proxy_line(line, &new_pool.0, &new_pool.1, &new_pool.2),
            "line {:?}",
            line
        );
    }

    let mut chunk = ParsedChunk::default();
    let payload = lines.iter().enumerate().filter_map(|(i, l)| payload_line(l).map(|p| (i + 1, p)));
    parse_proxy_span(payload, &span_pool.0, &span_pool.1, &span_pool.2, &mut chunk);
    assert_eq!(chunk.records, ref_records);
    assert_eq!(chunk.errors, ref_errors);
    for r in &chunk.records {
        assert_eq!(span_pool.0.resolve(r.domain), ref_pool.0.resolve(r.domain));
        assert_eq!(span_pool.2.resolve(r.url_path), ref_pool.2.resolve(r.url_path));
    }
}

fn arb_lines(max_fields: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..TOKENS.len(), 0..max_fields), 1..24)
}

fn arb_edits() -> impl Strategy<Value = Vec<(u8, usize, u8)>> {
    proptest::collection::vec((0u8..3, 0usize..96, 0u8..0x80), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dns_parsers_agree_on_arbitrary_lines(codes in arb_lines(8)) {
        let lines: Vec<String> = codes.iter().map(|c| line_from_codes(c)).collect();
        assert_dns_equivalent(&lines);
    }

    #[test]
    fn proxy_parsers_agree_on_arbitrary_lines(codes in arb_lines(13)) {
        let lines: Vec<String> = codes.iter().map(|c| line_from_codes(c)).collect();
        assert_proxy_equivalent(&lines);
    }

    #[test]
    fn dns_parsers_agree_on_mutated_lines(edit_sets in proptest::collection::vec(arb_edits(), 1..16)) {
        let lines: Vec<String> =
            edit_sets.iter().map(|edits| mutate(DNS_TEMPLATE, edits)).collect();
        assert_dns_equivalent(&lines);
    }

    #[test]
    fn proxy_parsers_agree_on_mutated_lines(edit_sets in proptest::collection::vec(arb_edits(), 1..16)) {
        let lines: Vec<String> =
            edit_sets.iter().map(|edits| mutate(PROXY_TEMPLATE, edits)).collect();
        assert_proxy_equivalent(&lines);
    }

    #[test]
    fn ipv4_grammar_matches_split_based_reference(codes in proptest::collection::vec(0usize..16, 0..14)) {
        // Strings over a dotted-quad-adjacent alphabet: digits, dots, signs,
        // spaces, a letter — dense coverage of near-miss addresses.
        const CHARS: [char; 16] =
            ['0', '1', '2', '5', '9', '.', '.', '.', '+', '-', ' ', 'a', '3', '6', '4', '8'];
        let s: String = codes.iter().map(|&c| CHARS[c % CHARS.len()]).collect();
        prop_assert_eq!(s.parse::<Ipv4>().ok(), reference_ipv4(&s), "{:?}", s);
    }
}

/// Symbol placeholders must never leak: every record coming out of a span
/// parse has fully-resolved interned symbols.
#[test]
fn span_parse_leaves_no_placeholder_symbols() {
    let domains = DomainInterner::new();
    let mut chunk = ParsedChunk::default();
    let lines: Vec<String> = (0..100)
        .map(|i| format!("{}\t10.0.0.{}\thost{}.example\tA\t-", 1000 + i, i % 7, i % 13))
        .collect();
    parse_dns_span(
        lines.iter().enumerate().map(|(i, l)| (i + 1, l.as_str())),
        &domains,
        &mut chunk,
    );
    assert_eq!(chunk.records.len(), 100);
    assert!(chunk.errors.is_empty());
    for q in &chunk.records {
        assert_ne!(q.qname, DomainSym::from_raw(u32::MAX));
        assert!(domains.resolve(q.qname).starts_with("host"));
    }
}
