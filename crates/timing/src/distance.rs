//! Statistical distances between aligned histograms.
//!
//! The paper chooses the **Jeffrey divergence** because it is "numerically
//! stable and robust to noise and size of histogram bins" (quoting Rubner et
//! al.), and notes L1 gave "very similar" results; both are provided.

/// Jeffrey divergence between two aligned frequency vectors.
///
/// For histograms `H = [(b_i, h_i)]` and `K = [(b_i, k_i)]` with
/// `m_i = (h_i + k_i) / 2`:
///
/// ```text
/// d_J(H, K) = Σ_i ( h_i·ln(h_i/m_i) + k_i·ln(k_i/m_i) )
/// ```
///
/// Terms with a zero numerator contribute zero (the `x·ln x → 0` limit). The
/// divergence is symmetric, non-negative, zero exactly for equal inputs, and
/// bounded by `2·ln 2` for probability vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths or contain negative values.
///
/// # Example
///
/// ```
/// use earlybird_timing::jeffrey_divergence;
/// assert_eq!(jeffrey_divergence(&[1.0], &[1.0]), 0.0);
/// let d = jeffrey_divergence(&[0.9, 0.1], &[1.0, 0.0]);
/// assert!(d > 0.0 && d < 2.0 * std::f64::consts::LN_2);
/// ```
pub fn jeffrey_divergence(h: &[f64], k: &[f64]) -> f64 {
    assert_eq!(h.len(), k.len(), "histograms must share a bin layout");
    let mut d = 0.0;
    for (&hi, &ki) in h.iter().zip(k) {
        assert!(hi >= 0.0 && ki >= 0.0, "frequencies must be non-negative");
        let mi = (hi + ki) / 2.0;
        if hi > 0.0 {
            d += hi * (hi / mi).ln();
        }
        if ki > 0.0 {
            d += ki * (ki / mi).ln();
        }
    }
    // Clamp tiny negative round-off.
    d.max(0.0)
}

/// L1 (total variation style) distance between aligned frequency vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn l1_distance(h: &[f64], k: &[f64]) -> f64 {
    assert_eq!(h.len(), k.len(), "histograms must share a bin layout");
    h.iter().zip(k).map(|(a, b)| (a - b).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_for_identical() {
        assert_eq!(jeffrey_divergence(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert_eq!(l1_distance(&[0.3, 0.7], &[0.3, 0.7]), 0.0);
    }

    #[test]
    fn maximal_for_disjoint_support() {
        // Disjoint mass: each term contributes ln 2.
        let d = jeffrey_divergence(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 2.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(l1_distance(&[1.0, 0.0], &[0.0, 1.0]), 2.0);
    }

    #[test]
    fn single_outlier_among_thirteen_is_under_paper_threshold() {
        // 12 beacon intervals + 1 outlier (the resiliency case from §IV-C):
        // should stay below the paper's chosen J_T = 0.06.
        let h = [12.0 / 13.0, 1.0 / 13.0];
        let k = [1.0, 0.0];
        let d = jeffrey_divergence(&h, &k);
        assert!(d < 0.06, "one outlier in 13 must survive: d = {d}");
    }

    #[test]
    fn two_outliers_among_fifteen_exceed_paper_threshold() {
        let h = [13.0 / 15.0, 1.0 / 15.0, 1.0 / 15.0];
        let k = [1.0, 0.0, 0.0];
        let d = jeffrey_divergence(&h, &k);
        assert!(d > 0.06, "two outliers in 15 should be rejected: d = {d}");
    }

    #[test]
    #[should_panic(expected = "bin layout")]
    fn mismatched_lengths_panic() {
        let _ = jeffrey_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_frequency_panics() {
        let _ = jeffrey_divergence(&[-0.1, 1.1], &[0.5, 0.5]);
    }

    proptest! {
        #[test]
        fn symmetric_and_nonnegative(v in proptest::collection::vec(0.0f64..1.0, 1..8)) {
            let total: f64 = v.iter().sum::<f64>().max(1e-9);
            let h: Vec<f64> = v.iter().map(|x| x / total).collect();
            let mut k = h.clone();
            k.rotate_right(1);
            let d1 = jeffrey_divergence(&h, &k);
            let d2 = jeffrey_divergence(&k, &h);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!(d1 >= 0.0);
            prop_assert!(d1 <= 2.0 * std::f64::consts::LN_2 + 1e-12);
        }

        #[test]
        fn l1_triangle_inequality(
            a in proptest::collection::vec(0.0f64..1.0, 4),
            b in proptest::collection::vec(0.0f64..1.0, 4),
            c in proptest::collection::vec(0.0f64..1.0, 4),
        ) {
            let ab = l1_distance(&a, &b);
            let bc = l1_distance(&b, &c);
            let ac = l1_distance(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-12);
        }
    }
}
