//! End-to-end `Engine::ingest_day` throughput (records/sec): the baseline
//! later perf PRs are measured against. Covers both dataset scales
//! (`LanlConfig::tiny()` and the benchmark-scale small config), both
//! sources (DNS and proxy), and sequential vs sharded C&C scoring.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use earlybird_engine::{DayBatch, Engine, EngineBuilder, IngestSource};
use earlybird_logmodel::format_dns_line;
use earlybird_synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

fn lanl_engine(challenge: &earlybird_synthgen::lanl::LanlChallenge, workers: usize) -> Engine {
    let mut engine = EngineBuilder::lanl()
        .parallelism(workers)
        .parallel_threshold(if workers > 1 { 1 } else { 512 })
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    // Warm the profiles with one bootstrap day so the rare sieve and
    // history lookups do representative work.
    engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));
    engine
}

fn bench_dns_ingest(c: &mut Criterion) {
    let scales: [(&str, earlybird_synthgen::lanl::LanlChallenge); 2] = [
        ("lanl_tiny", LanlGenerator::new(LanlConfig::tiny()).generate()),
        ("lanl_small", earlybird_bench::lanl_world()),
    ];
    for (label, challenge) in &scales {
        let day = challenge
            .dataset
            .day(challenge.dataset.meta.first_operation_day())
            .expect("operation day exists")
            .clone();
        let mut group = c.benchmark_group(format!("engine_ingest/{label}"));
        group.throughput(Throughput::Elements(day.queries.len() as u64));
        group.bench_function("dns_day", |b| {
            b.iter_batched(
                || lanl_engine(challenge, 4),
                |mut engine| engine.ingest_day(DayBatch::Dns(&day)),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}

/// The streaming ingest path against the `ingest_day` baseline: the same
/// operation day pushed through `begin_day` in bounded chunks (records and
/// raw interchange lines), with parallel parse+reduce workers.
fn bench_streaming_ingest(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let day = challenge
        .dataset
        .day(challenge.dataset.meta.first_operation_day())
        .expect("operation day exists")
        .clone();

    let mut group = c.benchmark_group("engine_ingest_streaming/lanl_small");
    group.throughput(Throughput::Elements(day.queries.len() as u64));
    group.bench_function("dns_day_chunked_records", |b| {
        b.iter_batched(
            || lanl_engine(&challenge, 4),
            |mut engine| {
                let mut ingest = engine.begin_day(day.day, IngestSource::Dns);
                for span in day.queries.chunks(8_192) {
                    ingest.push_dns_records(span);
                }
                ingest.finish()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();

    // Raw-line ingestion: parse + intern + reduce from text blocks.
    let lines: Vec<String> =
        day.queries.iter().map(|q| format_dns_line(q, &challenge.dataset.domains)).collect();
    let blocks: Vec<String> = lines.chunks(8_192).map(|block| block.join("\n")).collect();
    let mut group = c.benchmark_group("engine_ingest_streaming/lanl_small");
    group.throughput(Throughput::Elements(day.queries.len() as u64));
    group.bench_function("dns_day_raw_lines", |b| {
        b.iter_batched(
            || lanl_engine(&challenge, 4),
            |mut engine| {
                let mut ingest = engine.begin_day(day.day, IngestSource::Dns);
                for block in &blocks {
                    ingest.push_lines(block);
                }
                ingest.finish()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_proxy_ingest(c: &mut Criterion) {
    let world = earlybird_bench::ac_world();
    let day = world
        .dataset
        .day(world.dataset.meta.first_operation_day())
        .expect("operation day exists")
        .clone();
    let mut group = c.benchmark_group("engine_ingest/ac_small");
    group.throughput(Throughput::Elements(day.records.len() as u64));
    group.bench_function("proxy_day", |b| {
        b.iter_batched(
            || {
                let mut engine = EngineBuilder::enterprise()
                    .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
                    .expect("valid config");
                engine.ingest_day(DayBatch::Proxy {
                    day: &world.dataset.days[0],
                    dhcp: &world.dataset.dhcp,
                });
                engine
            },
            |mut engine| {
                engine.ingest_day(DayBatch::Proxy { day: &day, dhcp: &world.dataset.dhcp })
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_scoring_parallelism(c: &mut Criterion) {
    // Sequential vs sharded C&C scoring on the same retained day.
    let challenge = earlybird_bench::lanl_world();
    let day = challenge.dataset.meta.first_operation_day();
    for workers in [1usize, 4] {
        let mut engine = lanl_engine(&challenge, workers);
        let batch = challenge.dataset.day(day).expect("operation day exists");
        engine.ingest_day(DayBatch::Dns(batch));
        let mut group = c.benchmark_group(format!("engine_cc_scoring/workers_{workers}"));
        group.throughput(Throughput::Elements(batch.queries.len() as u64));
        group.bench_function("rescore_day", |b| {
            b.iter(|| engine.cc_scores(day).expect("retained day"))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dns_ingest, bench_streaming_ingest, bench_proxy_ingest, bench_scoring_parallelism
}
criterion_main!(benches);
