//! Data reduction (§IV-A): A-record restriction, internal-query and
//! internal-server filtering, folding — with the per-step distinct-domain
//! counters plotted in Fig. 2.
//!
//! Reduction is chunk-oriented so a day never has to be materialized at
//! once: [`reduce_dns_chunk`] / [`reduce_proxy_chunk`] turn any consecutive
//! slice of a day's records into a [`ChunkReduction`] (contacts plus partial
//! counters), and a [`DayReducer`] merges the per-chunk counters into the
//! day totals. Both chunk reducers take `&self` state only (the
//! [`FoldTable`] memo and the [`InternalFilter`] verdict cache are
//! internally synchronized), so disjoint chunks of one day can be reduced on
//! parallel workers. The whole-day [`reduce_dns_day`] / [`reduce_proxy_day`]
//! entry points are thin wrappers that feed a single chunk through the same
//! machinery and sort the surviving contacts by timestamp.

use crate::contact::{Contact, HttpContext};
use crate::fold::FoldTable;
use earlybird_logmodel::{
    DatasetMeta, DnsDayLog, DnsQuery, DnsRecordType, DomainSym, FastSet, HostKind, ProxyRecord,
    Published,
};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, RwLock};

/// Configuration of the reduction filters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReductionConfig {
    /// Suffixes of internal (enterprise-owned) namespaces; queries to these
    /// are dropped ("we filter out queries for internal LANL resources").
    pub internal_suffixes: Vec<String>,
}

impl ReductionConfig {
    /// Builds the config from dataset metadata.
    pub fn from_meta(meta: &DatasetMeta) -> Self {
        ReductionConfig { internal_suffixes: meta.internal_suffixes.clone() }
    }

    /// Whether `name` falls under an internal suffix (on a label boundary).
    pub fn is_internal(&self, name: &str) -> bool {
        self.internal_suffixes.iter().any(|s| {
            name == s.as_str()
                || (name.len() > s.len()
                    && name.ends_with(s.as_str())
                    && name.as_bytes()[name.len() - s.len() - 1] == b'.')
        })
    }
}

/// Verdict-cache cell values: unknown / classified external / internal.
const UNJUDGED: u8 = 0;
const EXTERNAL: u8 = 1;
const INTERNAL: u8 = 2;

/// The mutable half of the verdict memo, dense over raw symbol ids.
#[derive(Debug, Default)]
struct VerdictCache {
    vec: Vec<u8>,
    filled: usize,
    published: usize,
}

/// Memoized internal-namespace classifier.
///
/// The suffix scan in [`ReductionConfig::is_internal`] is linear in the
/// number of configured suffixes and was previously re-run for every record;
/// enterprise days repeat the same destinations millions of times, so the
/// filter caches the verdict per raw [`DomainSym`] and classifies each
/// distinct domain at most once. Verdicts live in a dense `Vec<u8>` indexed
/// by the raw symbol id, with a read-mostly snapshot republished through a
/// [`Published`] cell: chunk workers take an [`InternalJudge`] handle and
/// classify repeat domains with a plain array load. Misses fall back to the
/// internally synchronized live cache, so the filter remains shareable
/// across parallel chunk-reduction workers. When no internal suffixes are
/// configured every verdict is trivially "external" and the cache is
/// bypassed entirely.
#[derive(Debug)]
pub struct InternalFilter {
    cfg: ReductionConfig,
    trivial: bool,
    live: RwLock<VerdictCache>,
    snap: Published<Vec<u8>>,
}

impl InternalFilter {
    /// Wraps a reduction config with an empty verdict cache.
    pub fn new(cfg: ReductionConfig) -> Self {
        let trivial = cfg.internal_suffixes.is_empty();
        InternalFilter {
            cfg,
            trivial,
            live: RwLock::new(VerdictCache::default()),
            snap: Published::new(Vec::new()),
        }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &ReductionConfig {
        &self.cfg
    }

    /// A per-chunk classification handle over the current verdict snapshot.
    pub fn judge(&self) -> InternalJudge<'_> {
        InternalJudge { filter: self, snap: self.snap.load() }
    }

    /// Whether the raw symbol `raw_sym` names an internal destination;
    /// `resolve` supplies the name on a cache miss (once per distinct
    /// symbol).
    pub fn is_internal_sym(&self, raw_sym: DomainSym, resolve: impl FnOnce() -> String) -> bool {
        if self.trivial {
            return false;
        }
        let idx = raw_sym.raw() as usize;
        {
            let live = self.live.read().expect("internal filter poisoned");
            if let Some(&v) = live.vec.get(idx) {
                if v != UNJUDGED {
                    return v == INTERNAL;
                }
            }
        }
        let internal = self.cfg.is_internal(&resolve());
        let mut live = self.live.write().expect("internal filter poisoned");
        if live.vec.len() <= idx {
            live.vec.resize(idx + 1, UNJUDGED);
        }
        if live.vec[idx] == UNJUDGED {
            live.vec[idx] = if internal { INTERNAL } else { EXTERNAL };
            live.filled += 1;
        }
        if live.filled >= live.published + (live.published / 8).max(64) {
            live.published = live.filled;
            self.snap.publish(Arc::new(live.vec.clone()));
        }
        internal
    }
}

/// A per-chunk handle over an [`InternalFilter`] verdict snapshot.
///
/// Already-classified symbols are answered with a lock-free array load;
/// unknown symbols fall back to the shared filter.
#[derive(Debug)]
pub struct InternalJudge<'f> {
    filter: &'f InternalFilter,
    snap: Arc<Vec<u8>>,
}

impl InternalJudge<'_> {
    /// Whether `raw_sym` names an internal destination, consulting the
    /// pinned snapshot first; `resolve` supplies the name on a full miss.
    pub fn is_internal(&self, raw_sym: DomainSym, resolve: impl FnOnce() -> String) -> bool {
        if self.filter.trivial {
            return false;
        }
        match self.snap.get(raw_sym.raw() as usize) {
            Some(&v) if v != UNJUDGED => v == INTERNAL,
            _ => self.filter.is_internal_sym(raw_sym, resolve),
        }
    }
}

/// Distinct-domain counts after each DNS reduction step (the Fig. 2 series;
/// "new" and "rare" are computed downstream by the history and sieve).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsReductionCounts {
    /// Raw records in the day.
    pub records_all: usize,
    /// Records surviving the A-record restriction.
    pub records_a_only: usize,
    /// Distinct folded domains before any filtering ("All").
    pub domains_all: usize,
    /// Distinct folded domains after dropping internal queries.
    pub domains_after_internal_filter: usize,
    /// Distinct folded domains after additionally dropping internal-server
    /// sources.
    pub domains_after_server_filter: usize,
}

/// Distinct-domain counts after each proxy reduction step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyReductionCounts {
    /// Normalized records in the day.
    pub records_all: usize,
    /// Distinct folded domains before filtering.
    pub domains_all: usize,
    /// Distinct folded domains after dropping internal destinations.
    pub domains_after_internal_filter: usize,
    /// Distinct folded domains after additionally dropping server sources.
    pub domains_after_server_filter: usize,
}

/// The output of reducing one chunk of a day: the surviving contacts (in
/// chunk record order, *not* timestamp-sorted) plus the partial counters a
/// [`DayReducer`] merges into day totals.
#[derive(Debug, Default)]
pub struct ChunkReduction {
    /// Contacts surviving every filter, in the chunk's record order.
    pub contacts: Vec<Contact>,
    /// Records in the chunk.
    pub records: usize,
    /// Records surviving the A-record restriction (DNS chunks only).
    pub records_a_only: usize,
    /// Distinct folded domains in the chunk before filtering.
    pub domains_all: FastSet<DomainSym>,
    /// Distinct folded domains after the internal-namespace filter.
    pub domains_after_internal: FastSet<DomainSym>,
    /// Distinct folded domains after additionally dropping server sources.
    pub domains_after_server: FastSet<DomainSym>,
}

/// Reduces one chunk of DNS queries; thread-safe over shared `fold` /
/// `filter` state, so disjoint chunks may run on parallel workers.
pub fn reduce_dns_chunk(
    queries: &[DnsQuery],
    meta: &DatasetMeta,
    fold: &FoldTable,
    filter: &InternalFilter,
) -> ChunkReduction {
    let mut out = ChunkReduction { records: queries.len(), ..ChunkReduction::default() };
    let folder = fold.folder();
    let judge = filter.judge();
    for q in queries {
        let folded = folder.fold(q.qname);
        out.domains_all.insert(folded);
        if q.qtype != DnsRecordType::A {
            continue;
        }
        out.records_a_only += 1;
        if judge.is_internal(q.qname, || fold.raw_interner().resolve(q.qname).to_string()) {
            continue;
        }
        out.domains_after_internal.insert(folded);
        if meta.kind(q.src) == HostKind::Server {
            continue;
        }
        out.domains_after_server.insert(folded);
        out.contacts.push(Contact {
            ts: q.ts,
            host: q.src,
            domain: folded,
            dest_ip: q.answer,
            http: None,
        });
    }
    out
}

/// Reduces one chunk of *normalized* proxy records (see
/// [`crate::normalize`]); thread-safe like [`reduce_dns_chunk`].
///
/// # Panics
///
/// Panics if a record has no resolved host (normalization must run first).
pub fn reduce_proxy_chunk(
    records: &[ProxyRecord],
    meta: &DatasetMeta,
    fold: &FoldTable,
    filter: &InternalFilter,
) -> ChunkReduction {
    let mut out = ChunkReduction { records: records.len(), ..ChunkReduction::default() };
    let folder = fold.folder();
    let judge = filter.judge();
    for rec in records {
        let host = rec.host.expect("proxy records must be normalized before reduction");
        let folded = folder.fold(rec.domain);
        out.domains_all.insert(folded);
        if judge.is_internal(rec.domain, || fold.raw_interner().resolve(rec.domain).to_string()) {
            continue;
        }
        out.domains_after_internal.insert(folded);
        if meta.kind(host) == HostKind::Server {
            continue;
        }
        out.domains_after_server.insert(folded);
        out.contacts.push(Contact {
            ts: rec.ts_utc(),
            host,
            domain: folded,
            dest_ip: Some(rec.dest_ip),
            http: Some(HttpContext { ua: rec.user_agent, referer_present: rec.referer.is_some() }),
        });
    }
    out
}

/// Incrementally merges per-chunk reduction counters into day totals.
///
/// The distinct-domain series of Fig. 2 are set cardinalities, so the
/// reducer keeps the union of each chunk's domain sets and reports the
/// per-day counts at the end; record tallies are plain sums. One reducer
/// serves either source — read [`DayReducer::dns_counts`] or
/// [`DayReducer::proxy_counts`] according to what was pushed.
#[derive(Debug, Default)]
pub struct DayReducer {
    records: usize,
    records_a_only: usize,
    domains_all: FastSet<DomainSym>,
    domains_after_internal: FastSet<DomainSym>,
    domains_after_server: FastSet<DomainSym>,
}

impl DayReducer {
    /// Creates an empty reducer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one chunk's counters into the day totals (the chunk's
    /// contacts are untouched — route them to a
    /// [`crate::index::DayIndexBuilder`] or history accumulator).
    pub fn push_chunk(&mut self, chunk: &ChunkReduction) {
        self.records += chunk.records;
        self.records_a_only += chunk.records_a_only;
        self.domains_all.extend(&chunk.domains_all);
        self.domains_after_internal.extend(&chunk.domains_after_internal);
        self.domains_after_server.extend(&chunk.domains_after_server);
    }

    /// Records pushed so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Rewrites every distinct-domain set through `map` — the shard-merge
    /// hook that moves counters keyed by a shard-local folded interner onto
    /// the canonical table. `map` must be injective over the symbols present
    /// (a name-based interner remap always is), so cardinalities and hence
    /// the reported counts are preserved.
    pub fn remap_domains(&mut self, map: impl Fn(DomainSym) -> DomainSym) {
        self.domains_all = self.domains_all.drain().map(&map).collect();
        self.domains_after_internal = self.domains_after_internal.drain().map(&map).collect();
        self.domains_after_server = self.domains_after_server.drain().map(&map).collect();
    }

    /// Folds another reducer's totals into this one: record tallies add,
    /// distinct-domain sets union. Used by the shard merge, where each
    /// partition reduced a disjoint slice of the day.
    pub fn merge(&mut self, other: DayReducer) {
        self.records += other.records;
        self.records_a_only += other.records_a_only;
        self.domains_all.extend(other.domains_all);
        self.domains_after_internal.extend(other.domains_after_internal);
        self.domains_after_server.extend(other.domains_after_server);
    }

    /// The day's DNS counters (valid when DNS chunks were pushed).
    pub fn dns_counts(&self) -> DnsReductionCounts {
        DnsReductionCounts {
            records_all: self.records,
            records_a_only: self.records_a_only,
            domains_all: self.domains_all.len(),
            domains_after_internal_filter: self.domains_after_internal.len(),
            domains_after_server_filter: self.domains_after_server.len(),
        }
    }

    /// The day's proxy counters (valid when proxy chunks were pushed).
    pub fn proxy_counts(&self) -> ProxyReductionCounts {
        ProxyReductionCounts {
            records_all: self.records,
            domains_all: self.domains_all.len(),
            domains_after_internal_filter: self.domains_after_internal.len(),
            domains_after_server_filter: self.domains_after_server.len(),
        }
    }
}

/// Reduces one day of DNS logs to [`Contact`]s.
///
/// Applies, in order: A-record restriction, internal-namespace filter,
/// internal-server source filter; folds surviving names through `fold`. The
/// returned contacts are sorted by timestamp.
pub fn reduce_dns_day(
    day: &DnsDayLog,
    meta: &DatasetMeta,
    fold: &FoldTable,
    cfg: &ReductionConfig,
) -> (Vec<Contact>, DnsReductionCounts) {
    let filter = InternalFilter::new(cfg.clone());
    let chunk = reduce_dns_chunk(&day.queries, meta, fold, &filter);
    let mut reducer = DayReducer::new();
    reducer.push_chunk(&chunk);
    let mut contacts = chunk.contacts;
    contacts.sort_by_key(|c| c.ts);
    (contacts, reducer.dns_counts())
}

/// Reduces one day of *normalized* proxy records (see
/// [`crate::normalize::normalize_proxy_day`]) to [`Contact`]s.
///
/// # Panics
///
/// Panics if a record has no resolved host (normalization must run first).
pub fn reduce_proxy_day(
    records: &[ProxyRecord],
    meta: &DatasetMeta,
    fold: &FoldTable,
    cfg: &ReductionConfig,
) -> (Vec<Contact>, ProxyReductionCounts) {
    let filter = InternalFilter::new(cfg.clone());
    let chunk = reduce_proxy_chunk(records, meta, fold, &filter);
    let mut reducer = DayReducer::new();
    reducer.push_chunk(&chunk);
    let mut contacts = chunk.contacts;
    contacts.sort_by_key(|c| c.ts);
    (contacts, reducer.proxy_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{
        Day, DnsQuery, DomainInterner, HostId, HttpMethod, HttpStatus, Ipv4, PathInterner,
        Timestamp, TzOffset,
    };
    use std::sync::Arc;

    fn meta_with_server(n: u32, server: u32) -> DatasetMeta {
        let mut kinds = vec![HostKind::Workstation; n as usize];
        kinds[server as usize] = HostKind::Server;
        DatasetMeta {
            n_hosts: n,
            host_kinds: kinds,
            internal_suffixes: vec!["corp.local".into()],
            bootstrap_days: 0,
            total_days: 1,
        }
    }

    fn dns_query(
        domains: &DomainInterner,
        ts: u64,
        src: u32,
        name: &str,
        qtype: DnsRecordType,
    ) -> DnsQuery {
        DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(src),
            src_ip: Ipv4::new(10, 0, 0, src as u8),
            qname: domains.intern(name),
            qtype,
            answer: Some(Ipv4::new(93, 1, 2, 3)),
        }
    }

    #[test]
    fn dns_reduction_filters_in_paper_order() {
        let raw = Arc::new(DomainInterner::new());
        let day = DnsDayLog {
            day: Day::new(0),
            queries: vec![
                dns_query(&raw, 1, 0, "www.nbc.com", DnsRecordType::A),
                dns_query(&raw, 2, 0, "mail.corp.local", DnsRecordType::A), // internal
                dns_query(&raw, 3, 1, "evil.ru", DnsRecordType::A),         // server source
                dns_query(&raw, 4, 0, "txt.example.org", DnsRecordType::Txt), // non-A
                dns_query(&raw, 5, 2, "cdn.nbc.com", DnsRecordType::A),
            ],
        };
        let meta = meta_with_server(3, 1);
        let fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::from_meta(&meta);
        let (contacts, counts) = reduce_dns_day(&day, &meta, &fold, &cfg);

        assert_eq!(counts.records_all, 5);
        assert_eq!(counts.records_a_only, 4);
        // Folded distinct: nbc.com, corp.local, evil.ru, example.org
        assert_eq!(counts.domains_all, 4);
        // internal filter drops corp.local (and the non-A record never reaches it)
        assert_eq!(counts.domains_after_internal_filter, 2);
        // server filter drops evil.ru (only contacted by the server)
        assert_eq!(counts.domains_after_server_filter, 1);
        assert_eq!(
            contacts.len(),
            2,
            "www.nbc.com + cdn.nbc.com fold together but are two contacts"
        );
        assert!(contacts.iter().all(|c| c.http.is_none()));
    }

    #[test]
    fn internal_suffix_requires_label_boundary() {
        let cfg = ReductionConfig { internal_suffixes: vec!["corp.local".into()] };
        assert!(cfg.is_internal("corp.local"));
        assert!(cfg.is_internal("mail.corp.local"));
        assert!(!cfg.is_internal("evilcorp.local"), "no label boundary");
        assert!(!cfg.is_internal("corp.local.evil.com"));
    }

    #[test]
    fn internal_filter_memoizes_per_symbol() {
        let raw = DomainInterner::new();
        let internal = raw.intern("mail.corp.local");
        let external = raw.intern("nbc.com");
        let filter =
            InternalFilter::new(ReductionConfig { internal_suffixes: vec!["corp.local".into()] });
        let mut resolves = 0;
        for _ in 0..3 {
            assert!(filter.is_internal_sym(internal, || {
                resolves += 1;
                raw.resolve(internal).to_string()
            }));
            assert!(!filter.is_internal_sym(external, || {
                resolves += 1;
                raw.resolve(external).to_string()
            }));
        }
        assert_eq!(resolves, 2, "each distinct symbol is classified once");
    }

    #[test]
    fn chunked_reduction_matches_whole_day() {
        let raw = Arc::new(DomainInterner::new());
        let mut queries = Vec::new();
        for i in 0..60u32 {
            queries.push(dns_query(
                &raw,
                i as u64,
                i % 5,
                &format!("d{i}.example{}.com", i % 7),
                if i % 9 == 0 { DnsRecordType::Txt } else { DnsRecordType::A },
            ));
        }
        queries.push(dns_query(&raw, 99, 0, "x.corp.local", DnsRecordType::A));
        let meta = meta_with_server(5, 2);
        let cfg = ReductionConfig::from_meta(&meta);

        let fold_a = FoldTable::new(Arc::clone(&raw), 2);
        let day = DnsDayLog { day: Day::new(0), queries: queries.clone() };
        let (whole_contacts, whole_counts) = reduce_dns_day(&day, &meta, &fold_a, &cfg);

        let fold_b = FoldTable::new(Arc::clone(&raw), 2);
        let filter = InternalFilter::new(cfg.clone());
        let mut reducer = DayReducer::new();
        let mut contacts = Vec::new();
        for chunk in queries.chunks(7) {
            let red = reduce_dns_chunk(chunk, &meta, &fold_b, &filter);
            reducer.push_chunk(&red);
            contacts.extend(red.contacts);
        }
        contacts.sort_by_key(|c| c.ts);
        assert_eq!(reducer.dns_counts(), whole_counts);
        assert_eq!(contacts, whole_contacts);
    }

    #[test]
    fn counts_are_monotonically_decreasing() {
        let raw = Arc::new(DomainInterner::new());
        let mut queries = Vec::new();
        for i in 0..50u32 {
            queries.push(dns_query(
                &raw,
                i as u64,
                i % 5,
                &format!("d{i}.example{}.com", i % 7),
                DnsRecordType::A,
            ));
        }
        queries.push(dns_query(&raw, 99, 0, "x.corp.local", DnsRecordType::A));
        let day = DnsDayLog { day: Day::new(0), queries };
        let meta = meta_with_server(5, 2);
        let fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::from_meta(&meta);
        let (_, c) = reduce_dns_day(&day, &meta, &fold, &cfg);
        assert!(c.domains_all >= c.domains_after_internal_filter);
        assert!(c.domains_after_internal_filter >= c.domains_after_server_filter);
        assert!(c.records_all >= c.records_a_only);
    }

    fn proxy_record(
        domains: &DomainInterner,
        paths: &PathInterner,
        ts: u64,
        host: u32,
        name: &str,
        referer: Option<&str>,
    ) -> ProxyRecord {
        ProxyRecord {
            ts_local: Timestamp::from_secs(ts),
            tz: TzOffset::UTC,
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            host: Some(HostId::new(host)),
            domain: domains.intern(name),
            dest_ip: Ipv4::new(93, 1, 2, 3),
            method: HttpMethod::Get,
            status: HttpStatus::OK,
            url_path: paths.intern("/"),
            user_agent: None,
            referer: referer.map(|r| domains.intern(r)),
        }
    }

    #[test]
    fn proxy_reduction_preserves_http_context() {
        let raw = Arc::new(DomainInterner::new());
        let paths = PathInterner::new();
        let recs = vec![
            proxy_record(&raw, &paths, 1, 0, "cdn.evil.ru", None),
            proxy_record(&raw, &paths, 2, 0, "www.nbc.com", Some("google.com")),
            proxy_record(&raw, &paths, 3, 0, "wiki.corp.local", None),
        ];
        let meta = meta_with_server(2, 1);
        let fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::from_meta(&meta);
        let (contacts, counts) = reduce_proxy_day(&recs, &meta, &fold, &cfg);
        assert_eq!(counts.domains_all, 3);
        assert_eq!(counts.domains_after_internal_filter, 2);
        assert_eq!(contacts.len(), 2);
        let evil = contacts.iter().find(|c| &*fold.folded_name(c.domain) == "evil.ru").unwrap();
        assert!(!evil.http.unwrap().referer_present);
        let nbc = contacts.iter().find(|c| &*fold.folded_name(c.domain) == "nbc.com").unwrap();
        assert!(nbc.http.unwrap().referer_present);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn proxy_reduction_requires_resolved_hosts() {
        let raw = Arc::new(DomainInterner::new());
        let paths = PathInterner::new();
        let mut rec = proxy_record(&raw, &paths, 1, 0, "a.com", None);
        rec.host = None;
        let meta = meta_with_server(2, 1);
        let fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::default();
        let _ = reduce_proxy_day(&[rec], &meta, &fold, &cfg);
    }
}
