//! End-to-end benchmarks: the cost of regenerating each paper experiment at
//! test scale (one per table/figure family).

use criterion::{criterion_group, criterion_main, Criterion};
use earlybird_core::{train_cc_model, CcSample};
use earlybird_eval::lanl::{table2_grid, LanlRun};
use earlybird_features::CcFeatures;

fn bench_lanl_challenge(c: &mut Criterion) {
    // Table III end to end (pipeline run amortized outside the loop: the
    // bench isolates the 20-campaign solve).
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    c.bench_function("table3_solve_all_20_campaigns", |b| b.iter(|| run.table3()));
}

fn bench_table2(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    let grid = table2_grid();
    c.bench_function("table2_parameter_grid", |b| b.iter(|| run.table2(&grid)));
}

fn bench_fig2_fig3(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    c.bench_function("fig2_reduction_series", |b| b.iter(|| run.figure2(4, 10)));
    c.bench_function("fig3_gap_cdfs", |b| b.iter(|| run.figure3()));
}

fn bench_regression_fit(c: &mut Criterion) {
    // Model-training cost as a function of the training population size.
    let make = |n: usize| -> Vec<CcSample> {
        (0..n)
            .map(|k| CcSample {
                features: CcFeatures {
                    no_hosts: 1.0 + (k % 5) as f64,
                    auto_hosts: 1.0 + (k % 3) as f64,
                    no_ref: (k % 10) as f64 / 10.0,
                    rare_ua: ((k + 3) % 10) as f64 / 10.0,
                    dom_age: 10.0 + (k % 900) as f64,
                    dom_validity: 30.0 + (k % 700) as f64,
                },
                reported: k % 3 == 0,
            })
            .collect()
    };
    let mut group = c.benchmark_group("cc_regression_fit");
    for n in [100usize, 1_000, 10_000] {
        let samples = make(n);
        group.bench_function(format!("n_{n}"), |b| {
            b.iter(|| train_cc_model(std::hint::black_box(&samples), 0.4).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lanl_challenge, bench_table2, bench_fig2_fig3, bench_regression_fit
}
criterion_main!(benches);
