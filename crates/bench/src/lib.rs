//! Shared fixtures for the benchmarks and the `experiments` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use earlybird_engine::{
    CompactionTrigger, DayBatch, EngineBuilder, LifecycleConfig, Persistence, RetentionPolicy,
    SnapshotPolicy, StoreDir,
};
use earlybird_synthgen::ac::{AcConfig, AcGenerator, AcWorld};
use earlybird_synthgen::lanl::{LanlChallenge, LanlConfig, LanlGenerator};
use std::path::Path;
use std::sync::Arc;

/// Generates the benchmark-scale LANL challenge (deterministic).
pub fn lanl_world() -> LanlChallenge {
    LanlGenerator::new(LanlConfig::small()).generate()
}

/// Generates the full-scale LANL challenge used by the experiments binary.
pub fn lanl_world_full() -> LanlChallenge {
    LanlGenerator::new(LanlConfig::new(7)).generate()
}

/// Generates the benchmark-scale AC world (deterministic).
pub fn ac_world() -> AcWorld {
    AcGenerator::new(AcConfig::small()).generate()
}

/// Generates the full-scale AC world used by the experiments binary.
pub fn ac_world_full() -> AcWorld {
    AcGenerator::new(AcConfig::new(11)).generate()
}

/// Builds the compaction-bench fixture at `root`: a fresh [`StoreDir`]
/// holding a bootstrap full block plus one segment per operation day
/// (`boot + 6` days of `challenge`, trigger disabled so the chain stays
/// long). Returns the chain's total bytes.
///
/// # Panics
///
/// Panics on any store or ingest failure — bench setup has no recovery
/// path.
pub fn build_lanl_chain(challenge: &LanlChallenge, root: &Path) -> u64 {
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy::default(),
    };
    let dir = StoreDir::create(root, cfg).expect("create store dir");
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let mut engine = EngineBuilder::lanl()
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    for day in &challenge.dataset.days[..boot + 6] {
        engine.ingest_day(DayBatch::Dns(day));
        store.commit(&engine).expect("freeze").wait().expect("daily persist");
    }
    let bytes = store.store().chain_bytes();
    bytes
}

/// Replaces `dst` with a flat-file copy of `src` (subdirectories are not
/// copied — a store chain is flat). Used to hand each compaction-bench
/// iteration a pristine chain.
///
/// # Panics
///
/// Panics on any filesystem failure — bench setup has no recovery path.
pub fn copy_store_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read chain dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy chain file");
        }
    }
}
