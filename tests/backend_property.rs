//! Property tests for the object-store backends: visible-or-absent
//! uploads across arbitrary payloads and multipart part sizes, and the
//! conditional manifest swap refusing stale generations under arbitrary
//! concurrent-writer interleavings.

use earlybird::engine::{
    DayBatch, EngineBuilder, LifecycleConfig, MemBackend, ObjectStore, Persistence, S3LiteBackend,
    SnapshotPolicy, StoreDir, StoreError,
};
use earlybird::logmodel::{
    DatasetMeta, Day, DnsDayLog, DnsQuery, DnsRecordType, DomainInterner, HostId, HostKind, Ipv4,
    Timestamp,
};
use proptest::prelude::*;
use std::io::{Read as _, Write as _};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The satellite property: `S3LiteBackend::swap_manifest` refuses a
    /// stale generation under *any* interleaving of two writers. The
    /// schedule drives which writer attempts each step; a writer whose
    /// cached view matches the store's real generation must win, any
    /// other must lose with a [`StoreError::ManifestConflict`] that
    /// reports the store's actual generation — after which the loser
    /// refreshes its view (a reopen) and may win later.
    #[test]
    fn s3lite_swap_manifest_refuses_stale_generations(
        schedule in proptest::collection::vec(0usize..2, 1..32),
    ) {
        let service = S3LiteBackend::new();
        service.swap_manifest(None, 0, b"gen0").unwrap();

        let mut truth = 0u64; // the store's real generation
        let mut observed = [0u64; 2]; // each writer's last-read generation
        for (step, &w) in schedule.iter().enumerate() {
            let expected = observed[w];
            let next = expected + 1;
            let payload = format!("writer{w}-step{step}");
            match service.swap_manifest(Some(expected), next, payload.as_bytes()) {
                Ok(()) => {
                    prop_assert_eq!(
                        expected, truth,
                        "a swap may only win against the store's real generation"
                    );
                    truth = next;
                    observed[w] = next;
                }
                Err(StoreError::ManifestConflict { expected: e, found }) => {
                    prop_assert_eq!(e, Some(expected), "conflict echoes the loser's view");
                    prop_assert_eq!(found, Some(truth), "conflict reports the real generation");
                    prop_assert_ne!(expected, truth, "an up-to-date writer must not be refused");
                    observed[w] = truth; // the loser reopens and refreshes
                }
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
        // The surviving manifest is exactly the last winning write.
        prop_assert!(service.read_manifest().unwrap().is_some());
    }

    /// Visible-or-absent over arbitrary payloads and part sizes: an
    /// abandoned upload never surfaces, a finalized one round-trips
    /// byte-exactly — including payloads landing exactly on, one short
    /// of, and one past a multipart part boundary.
    #[test]
    fn uploads_are_visible_or_absent_for_any_payload(
        part_size in 1usize..48,
        len in 0usize..200,
        seed in proptest::num::u8::ANY,
        abandon in proptest::bool::ANY,
    ) {
        let payload: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
        let backends: Vec<Box<dyn ObjectStore>> = vec![
            Box::new(MemBackend::new()),
            Box::new(S3LiteBackend::with_part_size(part_size)),
        ];
        for backend in backends {
            let mut upload = backend.put_atomic("obj.ebstore").unwrap();
            upload.write_all(&payload).unwrap();
            prop_assert_eq!(upload.bytes_staged(), payload.len() as u64);
            if abandon {
                drop(upload);
                prop_assert!(
                    backend.get("obj.ebstore").is_err(),
                    "{}: abandoned upload must stay invisible", backend.kind()
                );
                prop_assert!(backend.list().unwrap().is_empty());
            } else {
                upload.finalize().unwrap();
                let mut back = Vec::new();
                backend.get("obj.ebstore").unwrap().read_to_end(&mut back).unwrap();
                prop_assert_eq!(&back, &payload, "{}: byte-exact roundtrip", backend.kind());
            }
        }
    }
}

// -- the race at the StoreDir level -----------------------------------------

fn synthetic_day(domains: &DomainInterner, day: u32) -> DnsDayLog {
    let mut queries = Vec::new();
    for host in [1u32, 2] {
        for beat in 0..12 {
            queries.push(DnsQuery {
                ts: Timestamp::from_secs(u64::from(day) * 86_400 + host as u64 * 5 + beat * 600),
                src: HostId::new(host),
                src_ip: Ipv4::new(10, 0, 0, host as u8),
                qname: domains.intern("cc.evil.example"),
                qtype: DnsRecordType::A,
                answer: Some(Ipv4::new(203, 0, 113, 5)),
            });
        }
    }
    queries.sort_by_key(|q| q.ts);
    DnsDayLog { day: Day::new(day), queries }
}

/// Two engines driving the same S3-style store: the writer that commits
/// second loses with a typed [`StoreError::ManifestConflict`] — the chain
/// is the winner's, never an interleaving of both.
#[test]
fn concurrent_store_dirs_surface_a_typed_manifest_conflict() {
    let domains = Arc::new(DomainInterner::new());
    let meta = DatasetMeta {
        n_hosts: 4,
        host_kinds: vec![HostKind::Workstation; 4],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 4,
    };
    let engine_for = |domains: &Arc<DomainInterner>| {
        EngineBuilder::lanl().build(Arc::clone(domains), meta.clone()).expect("valid config")
    };

    let service = S3LiteBackend::new();
    let cfg = LifecycleConfig::default();

    // Writer A creates the store and persists day 0.
    let dir_a = StoreDir::create_with(service.clone(), cfg).expect("create");
    let store_a = Persistence::new(dir_a, SnapshotPolicy::default());
    let mut engine_a = engine_for(&domains);
    engine_a.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 0)));
    store_a.commit(&engine_a).expect("freeze").wait().expect("A persists day 0");

    // Writer B opens the same store at the same generation.
    let dir_b = StoreDir::open_with(service.clone(), cfg).expect("B opens");
    let store_b = Persistence::new(dir_b, SnapshotPolicy::default());
    let mut engine_b = store_b.restore(EngineBuilder::lanl()).expect("B restores");
    assert_eq!(store_a.generation(), store_b.generation());

    // A commits day 1 first and wins; B races the same generation with a
    // *different* day (different bytes — a clobber would corrupt A's
    // committed object, not just its manifest entry).
    engine_a.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 1)));
    store_a.commit(&engine_a).expect("freeze").wait().expect("A persists day 1");
    engine_b.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 2)));
    let err = store_b
        .commit(&engine_b)
        .and_then(|handle| handle.wait())
        .expect_err("B must lose the race");
    assert!(
        matches!(err, StoreError::ManifestConflict { .. } | StoreError::ObjectConflict { .. }),
        "typed conflict, got {err}"
    );

    // The chain is exactly A's — bytes included; B reopens, restores, and
    // sees A's days.
    let fresh = StoreDir::open_with(service.clone(), cfg).expect("reopen");
    assert_eq!(fresh.generation(), store_a.generation());
    let restored = Persistence::new(fresh, SnapshotPolicy::default())
        .restore(EngineBuilder::lanl())
        .expect("winner's chain restores");
    assert_eq!(
        restored.reports().map(|r| r.day).collect::<Vec<_>>(),
        vec![Day::new(0), Day::new(1)],
        "winner's two days, no interleaving"
    );
}
