//! Incrementally updated profiles of normal activity (§III-E "Profiling"):
//! the history of external destinations visited by internal hosts, and the
//! history of user-agent strings and the hosts using them.
//!
//! Both histories are "initialized during a bootstrapping period (e.g., one
//! month), and then updated incrementally daily".

use crate::contact::Contact;
use earlybird_logmodel::{DomainSym, FastMap, FastSet, HostId, UaSym};
use serde::{Deserialize, Serialize};

/// History of folded external destinations ever contacted by internal hosts.
///
/// Alongside the membership set, the history keeps its insertion order:
/// appending is the only mutation, so checkpointing can persist just the
/// tail added since the last snapshot (O(day), not O(history)) and restore
/// by replaying the log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DomainHistory {
    seen: FastSet<DomainSym>,
    /// Domains in first-seen order; `seen` is exactly this set.
    order: Vec<DomainSym>,
    days_ingested: u32,
}

impl DomainHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `domain` has never been seen in any ingested day.
    pub fn is_new(&self, domain: DomainSym) -> bool {
        !self.seen.contains(&domain)
    }

    /// Ingests one day of contacts: every contacted domain becomes known.
    /// ("updated at the end of each day to include all new domains from that
    /// day", §IV-A.)
    pub fn update<'a>(&mut self, contacts: impl IntoIterator<Item = &'a Contact>) {
        self.update_domains(contacts.into_iter().map(|c| c.domain));
    }

    /// Ingests a pre-computed domain set (equivalent to [`Self::update`]).
    pub fn update_domains(&mut self, domains: impl IntoIterator<Item = DomainSym>) {
        for domain in domains {
            if self.seen.insert(domain) {
                self.order.push(domain);
            }
        }
        self.days_ingested += 1;
    }

    /// The known domains in first-seen order — the persistence hook used by
    /// `earlybird-store` (a checkpoint records `ordered()[watermark..]`).
    pub fn ordered(&self) -> &[DomainSym] {
        &self.order
    }

    /// Replays a restored tail of the insertion log and installs the
    /// absolute ingested-day counter (restoring is not itself an ingested
    /// day).
    pub fn restore_extend(
        &mut self,
        domains: impl IntoIterator<Item = DomainSym>,
        days_ingested: u32,
    ) {
        for domain in domains {
            if self.seen.insert(domain) {
                self.order.push(domain);
            }
        }
        self.days_ingested = days_ingested;
    }

    /// Number of distinct domains ever seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Number of days ingested so far.
    pub fn days_ingested(&self) -> u32 {
        self.days_ingested
    }
}

/// History of user-agent strings and the set of hosts using each.
///
/// "An UA is considered rare (after the training period of one month) if it
/// is used by less than a threshold of hosts (set at 10 based on SOC
/// recommendation)" (§IV-C).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UaHistory {
    hosts_by_ua: FastMap<UaSym, FastSet<HostId>>,
    /// First sighting of each `(user agent, host)` pair, in insertion
    /// order; `hosts_by_ua` is exactly this log folded into sets. Kept so
    /// checkpoints can persist just the tail added since the last snapshot.
    pair_log: Vec<(UaSym, HostId)>,
    rare_threshold: usize,
}

impl UaHistory {
    /// Creates an empty history with the given rare-UA host threshold.
    ///
    /// # Panics
    ///
    /// Panics if `rare_threshold` is zero.
    pub fn new(rare_threshold: usize) -> Self {
        assert!(rare_threshold > 0, "rare threshold must be positive");
        UaHistory { hosts_by_ua: FastMap::default(), pair_log: Vec::new(), rare_threshold }
    }

    /// The paper's threshold of 10 hosts.
    pub fn paper_default() -> Self {
        UaHistory::new(10)
    }

    /// Ingests one day of contacts, recording which hosts used which UAs.
    pub fn update<'a>(&mut self, contacts: impl IntoIterator<Item = &'a Contact>) {
        self.update_pairs(contacts.into_iter().filter_map(|c| {
            let http = c.http.as_ref()?;
            Some((http.ua?, c.host))
        }));
    }

    /// Ingests pre-extracted `(user agent, host)` observations — the
    /// streaming path accumulates these per chunk and applies them at day
    /// end, after the day's index was classified against the pre-update
    /// history.
    pub fn update_pairs(&mut self, pairs: impl IntoIterator<Item = (UaSym, HostId)>) {
        for (ua, host) in pairs {
            if self.hosts_by_ua.entry(ua).or_default().insert(host) {
                self.pair_log.push((ua, host));
            }
        }
    }

    /// First sightings of `(user agent, host)` pairs in insertion order —
    /// the persistence hook used by `earlybird-store` (a checkpoint records
    /// `pair_log()[watermark..]`; restoring replays the tail through
    /// [`UaHistory::update_pairs`]).
    pub fn pair_log(&self) -> &[(UaSym, HostId)] {
        &self.pair_log
    }

    /// Whether `ua` is rare: used by fewer than the threshold of distinct
    /// hosts across the ingested history. Unknown UAs are rare.
    pub fn is_rare(&self, ua: UaSym) -> bool {
        self.hosts_by_ua.get(&ua).is_none_or(|hosts| hosts.len() < self.rare_threshold)
    }

    /// Number of distinct hosts that have used `ua`.
    pub fn host_count(&self, ua: UaSym) -> usize {
        self.hosts_by_ua.get(&ua).map_or(0, FastSet::len)
    }

    /// Number of distinct UAs observed.
    pub fn len(&self) -> usize {
        self.hosts_by_ua.len()
    }

    /// Whether no UAs were observed.
    pub fn is_empty(&self) -> bool {
        self.hosts_by_ua.is_empty()
    }

    /// The rare-UA host threshold.
    pub fn rare_threshold(&self) -> usize {
        self.rare_threshold
    }
}

impl Default for UaHistory {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::HttpContext;
    use earlybird_logmodel::{DomainInterner, Timestamp, UaInterner};

    fn contact(domain: DomainSym, host: u32, ua: Option<UaSym>) -> Contact {
        Contact {
            ts: Timestamp::from_secs(0),
            host: HostId::new(host),
            domain,
            dest_ip: None,
            http: ua.map(|u| HttpContext { ua: Some(u), referer_present: true }),
        }
    }

    #[test]
    fn new_domains_become_known_after_update() {
        let domains = DomainInterner::new();
        let a = domains.intern("a.com");
        let b = domains.intern("b.com");
        let mut h = DomainHistory::new();
        assert!(h.is_new(a));
        h.update(&[contact(a, 1, None)]);
        assert!(!h.is_new(a));
        assert!(h.is_new(b));
        assert_eq!(h.days_ingested(), 1);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_domains_is_equivalent() {
        let domains = DomainInterner::new();
        let a = domains.intern("a.com");
        let mut h = DomainHistory::new();
        h.update_domains([a]);
        assert!(!h.is_new(a));
    }

    #[test]
    fn ua_rarity_depends_on_host_population() {
        let domains = DomainInterner::new();
        let uas = UaInterner::new();
        let d = domains.intern("x.com");
        let common = uas.intern("Mozilla/5.0");
        let odd = uas.intern("EvilBot/1.0");
        let mut h = UaHistory::new(3);
        for host in 0..5 {
            h.update(&[contact(d, host, Some(common))]);
        }
        h.update(&[contact(d, 0, Some(odd))]);
        assert!(!h.is_rare(common));
        assert!(h.is_rare(odd));
        assert_eq!(h.host_count(common), 5);
        assert_eq!(h.host_count(odd), 1);
    }

    #[test]
    fn unknown_ua_is_rare() {
        let uas = UaInterner::new();
        let h = UaHistory::paper_default();
        assert!(h.is_rare(uas.intern("NeverSeen/0.1")));
        assert_eq!(h.rare_threshold(), 10);
    }

    #[test]
    fn same_host_repeated_counts_once() {
        let domains = DomainInterner::new();
        let uas = UaInterner::new();
        let d = domains.intern("x.com");
        let ua = uas.intern("Agent/2");
        let mut h = UaHistory::new(2);
        for _ in 0..10 {
            h.update(&[contact(d, 7, Some(ua))]);
        }
        assert_eq!(h.host_count(ua), 1);
        assert!(h.is_rare(ua));
    }

    #[test]
    fn dns_contacts_do_not_touch_ua_history() {
        let domains = DomainInterner::new();
        let d = domains.intern("x.com");
        let mut h = UaHistory::paper_default();
        h.update(&[contact(d, 1, None)]);
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = UaHistory::new(0);
    }
}
