//! Data reduction (§IV-A): A-record restriction, internal-query and
//! internal-server filtering, folding — with the per-step distinct-domain
//! counters plotted in Fig. 2.

use crate::contact::{Contact, HttpContext};
use crate::fold::FoldTable;
use earlybird_logmodel::{DatasetMeta, DnsDayLog, DnsRecordType, DomainSym, HostKind, ProxyRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Configuration of the reduction filters.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReductionConfig {
    /// Suffixes of internal (enterprise-owned) namespaces; queries to these
    /// are dropped ("we filter out queries for internal LANL resources").
    pub internal_suffixes: Vec<String>,
}

impl ReductionConfig {
    /// Builds the config from dataset metadata.
    pub fn from_meta(meta: &DatasetMeta) -> Self {
        ReductionConfig { internal_suffixes: meta.internal_suffixes.clone() }
    }

    fn is_internal(&self, name: &str) -> bool {
        self.internal_suffixes.iter().any(|s| {
            name == s.as_str()
                || (name.len() > s.len()
                    && name.ends_with(s.as_str())
                    && name.as_bytes()[name.len() - s.len() - 1] == b'.')
        })
    }
}

/// Distinct-domain counts after each DNS reduction step (the Fig. 2 series;
/// "new" and "rare" are computed downstream by the history and sieve).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsReductionCounts {
    /// Raw records in the day.
    pub records_all: usize,
    /// Records surviving the A-record restriction.
    pub records_a_only: usize,
    /// Distinct folded domains before any filtering ("All").
    pub domains_all: usize,
    /// Distinct folded domains after dropping internal queries.
    pub domains_after_internal_filter: usize,
    /// Distinct folded domains after additionally dropping internal-server
    /// sources.
    pub domains_after_server_filter: usize,
}

/// Reduces one day of DNS logs to [`Contact`]s.
///
/// Applies, in order: A-record restriction, internal-namespace filter,
/// internal-server source filter; folds surviving names through `fold`.
pub fn reduce_dns_day(
    day: &DnsDayLog,
    meta: &DatasetMeta,
    fold: &mut FoldTable,
    cfg: &ReductionConfig,
) -> (Vec<Contact>, DnsReductionCounts) {
    let mut counts = DnsReductionCounts { records_all: day.queries.len(), ..Default::default() };
    let mut all: HashSet<DomainSym> = HashSet::new();
    let mut after_internal: HashSet<DomainSym> = HashSet::new();
    let mut after_server: HashSet<DomainSym> = HashSet::new();
    let mut contacts = Vec::new();

    for q in &day.queries {
        let folded = fold.fold(q.qname);
        all.insert(folded);
        if q.qtype != DnsRecordType::A {
            continue;
        }
        counts.records_a_only += 1;
        let name = fold.raw_interner().resolve(q.qname);
        if cfg.is_internal(&name) {
            continue;
        }
        after_internal.insert(folded);
        if meta.kind(q.src) == HostKind::Server {
            continue;
        }
        after_server.insert(folded);
        contacts.push(Contact {
            ts: q.ts,
            host: q.src,
            domain: folded,
            dest_ip: q.answer,
            http: None,
        });
    }
    contacts.sort_by_key(|c| c.ts);
    counts.domains_all = all.len();
    counts.domains_after_internal_filter = after_internal.len();
    counts.domains_after_server_filter = after_server.len();
    (contacts, counts)
}

/// Distinct-domain counts after each proxy reduction step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyReductionCounts {
    /// Normalized records in the day.
    pub records_all: usize,
    /// Distinct folded domains before filtering.
    pub domains_all: usize,
    /// Distinct folded domains after dropping internal destinations.
    pub domains_after_internal_filter: usize,
    /// Distinct folded domains after additionally dropping server sources.
    pub domains_after_server_filter: usize,
}

/// Reduces one day of *normalized* proxy records (see
/// [`crate::normalize::normalize_proxy_day`]) to [`Contact`]s.
///
/// # Panics
///
/// Panics if a record has no resolved host (normalization must run first).
pub fn reduce_proxy_day(
    records: &[ProxyRecord],
    meta: &DatasetMeta,
    fold: &mut FoldTable,
    cfg: &ReductionConfig,
) -> (Vec<Contact>, ProxyReductionCounts) {
    let mut counts = ProxyReductionCounts { records_all: records.len(), ..Default::default() };
    let mut all: HashSet<DomainSym> = HashSet::new();
    let mut after_internal: HashSet<DomainSym> = HashSet::new();
    let mut after_server: HashSet<DomainSym> = HashSet::new();
    let mut contacts = Vec::new();

    for rec in records {
        let host = rec.host.expect("proxy records must be normalized before reduction");
        let folded = fold.fold(rec.domain);
        all.insert(folded);
        let name = fold.raw_interner().resolve(rec.domain);
        if cfg.is_internal(&name) {
            continue;
        }
        after_internal.insert(folded);
        if meta.kind(host) == HostKind::Server {
            continue;
        }
        after_server.insert(folded);
        contacts.push(Contact {
            ts: rec.ts_utc(),
            host,
            domain: folded,
            dest_ip: Some(rec.dest_ip),
            http: Some(HttpContext { ua: rec.user_agent, referer_present: rec.referer.is_some() }),
        });
    }
    contacts.sort_by_key(|c| c.ts);
    counts.domains_all = all.len();
    counts.domains_after_internal_filter = after_internal.len();
    counts.domains_after_server_filter = after_server.len();
    (contacts, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{
        Day, DnsQuery, DomainInterner, HostId, HttpMethod, HttpStatus, Ipv4, PathInterner,
        Timestamp, TzOffset,
    };
    use std::sync::Arc;

    fn meta_with_server(n: u32, server: u32) -> DatasetMeta {
        let mut kinds = vec![HostKind::Workstation; n as usize];
        kinds[server as usize] = HostKind::Server;
        DatasetMeta {
            n_hosts: n,
            host_kinds: kinds,
            internal_suffixes: vec!["corp.local".into()],
            bootstrap_days: 0,
            total_days: 1,
        }
    }

    fn dns_query(
        domains: &DomainInterner,
        ts: u64,
        src: u32,
        name: &str,
        qtype: DnsRecordType,
    ) -> DnsQuery {
        DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(src),
            src_ip: Ipv4::new(10, 0, 0, src as u8),
            qname: domains.intern(name),
            qtype,
            answer: Some(Ipv4::new(93, 1, 2, 3)),
        }
    }

    #[test]
    fn dns_reduction_filters_in_paper_order() {
        let raw = Arc::new(DomainInterner::new());
        let day = DnsDayLog {
            day: Day::new(0),
            queries: vec![
                dns_query(&raw, 1, 0, "www.nbc.com", DnsRecordType::A),
                dns_query(&raw, 2, 0, "mail.corp.local", DnsRecordType::A), // internal
                dns_query(&raw, 3, 1, "evil.ru", DnsRecordType::A),         // server source
                dns_query(&raw, 4, 0, "txt.example.org", DnsRecordType::Txt), // non-A
                dns_query(&raw, 5, 2, "cdn.nbc.com", DnsRecordType::A),
            ],
        };
        let meta = meta_with_server(3, 1);
        let mut fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::from_meta(&meta);
        let (contacts, counts) = reduce_dns_day(&day, &meta, &mut fold, &cfg);

        assert_eq!(counts.records_all, 5);
        assert_eq!(counts.records_a_only, 4);
        // Folded distinct: nbc.com, corp.local, evil.ru, example.org
        assert_eq!(counts.domains_all, 4);
        // internal filter drops corp.local (and the non-A record never reaches it)
        assert_eq!(counts.domains_after_internal_filter, 2);
        // server filter drops evil.ru (only contacted by the server)
        assert_eq!(counts.domains_after_server_filter, 1);
        assert_eq!(
            contacts.len(),
            2,
            "www.nbc.com + cdn.nbc.com fold together but are two contacts"
        );
        assert!(contacts.iter().all(|c| c.http.is_none()));
    }

    #[test]
    fn internal_suffix_requires_label_boundary() {
        let cfg = ReductionConfig { internal_suffixes: vec!["corp.local".into()] };
        assert!(cfg.is_internal("corp.local"));
        assert!(cfg.is_internal("mail.corp.local"));
        assert!(!cfg.is_internal("evilcorp.local"), "no label boundary");
        assert!(!cfg.is_internal("corp.local.evil.com"));
    }

    #[test]
    fn counts_are_monotonically_decreasing() {
        let raw = Arc::new(DomainInterner::new());
        let mut queries = Vec::new();
        for i in 0..50u32 {
            queries.push(dns_query(
                &raw,
                i as u64,
                i % 5,
                &format!("d{i}.example{}.com", i % 7),
                DnsRecordType::A,
            ));
        }
        queries.push(dns_query(&raw, 99, 0, "x.corp.local", DnsRecordType::A));
        let day = DnsDayLog { day: Day::new(0), queries };
        let meta = meta_with_server(5, 2);
        let mut fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::from_meta(&meta);
        let (_, c) = reduce_dns_day(&day, &meta, &mut fold, &cfg);
        assert!(c.domains_all >= c.domains_after_internal_filter);
        assert!(c.domains_after_internal_filter >= c.domains_after_server_filter);
        assert!(c.records_all >= c.records_a_only);
    }

    fn proxy_record(
        domains: &DomainInterner,
        paths: &PathInterner,
        ts: u64,
        host: u32,
        name: &str,
        referer: Option<&str>,
    ) -> ProxyRecord {
        ProxyRecord {
            ts_local: Timestamp::from_secs(ts),
            tz: TzOffset::UTC,
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            host: Some(HostId::new(host)),
            domain: domains.intern(name),
            dest_ip: Ipv4::new(93, 1, 2, 3),
            method: HttpMethod::Get,
            status: HttpStatus::OK,
            url_path: paths.intern("/"),
            user_agent: None,
            referer: referer.map(|r| domains.intern(r)),
        }
    }

    #[test]
    fn proxy_reduction_preserves_http_context() {
        let raw = Arc::new(DomainInterner::new());
        let paths = PathInterner::new();
        let recs = vec![
            proxy_record(&raw, &paths, 1, 0, "cdn.evil.ru", None),
            proxy_record(&raw, &paths, 2, 0, "www.nbc.com", Some("google.com")),
            proxy_record(&raw, &paths, 3, 0, "wiki.corp.local", None),
        ];
        let meta = meta_with_server(2, 1);
        let mut fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::from_meta(&meta);
        let (contacts, counts) = reduce_proxy_day(&recs, &meta, &mut fold, &cfg);
        assert_eq!(counts.domains_all, 3);
        assert_eq!(counts.domains_after_internal_filter, 2);
        assert_eq!(contacts.len(), 2);
        let evil = contacts.iter().find(|c| &*fold.folded_name(c.domain) == "evil.ru").unwrap();
        assert!(!evil.http.unwrap().referer_present);
        let nbc = contacts.iter().find(|c| &*fold.folded_name(c.domain) == "nbc.com").unwrap();
        assert!(nbc.http.unwrap().referer_present);
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn proxy_reduction_requires_resolved_hosts() {
        let raw = Arc::new(DomainInterner::new());
        let paths = PathInterner::new();
        let mut rec = proxy_record(&raw, &paths, 1, 0, "a.com", None);
        rec.host = None;
        let meta = meta_with_server(2, 1);
        let mut fold = FoldTable::new(Arc::clone(&raw), 2);
        let cfg = ReductionConfig::default();
        let _ = reduce_proxy_day(&[rec], &meta, &mut fold, &cfg);
    }
}
