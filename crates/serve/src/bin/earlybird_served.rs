//! The `earlybird_served` daemon binary.
//!
//! ```text
//! earlybird_served --root <dir> [--addr 127.0.0.1:4521] [--backend localfs|mem]
//! ```
//!
//! Serves the multi-tenant ingest + query API over the store rooted at
//! `--root` (each tenant is a scope under it). Prints one
//! `earlybird-served listening on <addr>` line to stdout once ready, so
//! scripts can scrape the bound port. Runs until `POST
//! /v1/admin/shutdown` completes a graceful drain-and-checkpoint; an
//! unclean kill loses nothing that was acked durable.

use earlybird_serve::{Server, ServerConfig};
use earlybird_store::{LocalFsBackend, MemBackend, ObjectStore};
use std::io::Write as _;

fn main() {
    let mut root: Option<String> = None;
    let mut addr = "127.0.0.1:4521".to_string();
    let mut backend = "localfs".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take =
            |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} requires a value")));
        match arg.as_str() {
            "--root" => root = Some(take("--root")),
            "--addr" => addr = take("--addr"),
            "--backend" => backend = take("--backend"),
            "--help" | "-h" => {
                println!(
                    "usage: earlybird_served --root <dir> [--addr HOST:PORT] [--backend localfs|mem]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let store: Box<dyn ObjectStore> = match backend.as_str() {
        "localfs" => {
            let root = root.unwrap_or_else(|| die("--root is required for the localfs backend"));
            match LocalFsBackend::new(&root) {
                Ok(fs) => Box::new(fs),
                Err(e) => die(&format!("cannot open store root {root:?}: {e}")),
            }
        }
        // An in-memory root: useful for demos; nothing survives exit.
        "mem" => Box::new(MemBackend::new()),
        other => die(&format!("unknown backend {other:?} (expected localfs or mem)")),
    };

    let cfg = ServerConfig { addr, ..ServerConfig::default() };
    let server = match Server::bind(store, cfg) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot start: {e}")),
    };
    println!(
        "earlybird-served listening on {} ({} tenant(s) restored)",
        server.addr(),
        server.tenant_count()
    );
    let _ = std::io::stdout().flush();
    server.run();
    println!("earlybird-served: graceful shutdown complete");
}

fn die(msg: &str) -> ! {
    eprintln!("earlybird_served: {msg}");
    std::process::exit(2);
}
