//! Deterministic domain-name generators: pronounceable benign names,
//! anonymized LANL-style tokens, and the DGA families described in §VI-C/D
//! (4–5-character `.info` names, 20-character hex `.info` names, and random
//! `.org` words).

use rand::Rng;

const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwz";
const VOWELS: &[u8] = b"aeiou";
const HEX: &[u8] = b"0123456789abcdef";

/// A pronounceable lowercase token of `syllables` consonant-vowel pairs.
pub fn pronounceable(rng: &mut impl Rng, syllables: usize) -> String {
    let mut s = String::with_capacity(syllables * 2);
    for _ in 0..syllables {
        s.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        s.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
    }
    s
}

/// A benign-looking second-level domain, e.g. `kotuvi.com`.
pub fn benign_domain(rng: &mut impl Rng) -> String {
    let tld = ["com", "net", "org", "io", "co"][rng.gen_range(0..5)];
    let syllables = rng.gen_range(2..5);
    format!("{}.{}", pronounceable(rng, syllables), tld)
}

/// An anonymized LANL-style name: an opaque token under the `.c3` zone
/// (mirroring the anonymized names like `fluttershy.c3` in the paper's
/// Fig. 4).
pub fn lanl_domain(rng: &mut impl Rng, index: u64) -> String {
    format!("{}{}.c3", pronounceable(rng, 3), index)
}

/// A 4–5-character `.info` DGA name (the no-hint cluster of §VI-C, e.g.
/// `mgwg.info`).
pub fn dga_short_info(rng: &mut impl Rng) -> String {
    let len = rng.gen_range(4..=5);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        s.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
    }
    format!("{s}.info")
}

/// A 20-character hex `.info` DGA name (the SOC-hints cluster of §VI-D,
/// e.g. `f0371288e0a20a541328.info`).
pub fn dga_hex_info(rng: &mut impl Rng) -> String {
    let mut s = String::with_capacity(20);
    for _ in 0..20 {
        s.push(HEX[rng.gen_range(0..HEX.len())] as char);
    }
    format!("{s}.info")
}

/// A random-word `.org` name (the Ramdo-style cluster of Fig. 8, e.g.
/// `kuqcuqmaggguqum.org`).
pub fn ramdo_org(rng: &mut impl Rng) -> String {
    let len = rng.gen_range(14..=16);
    let mut s = String::with_capacity(len);
    for i in 0..len {
        let set = if i % 3 == 2 { VOWELS } else { CONSONANTS };
        s.push(set[rng.gen_range(0..set.len())] as char);
    }
    format!("{s}.org")
}

/// A Russian-zone malware-delivery name (the `.ru` domains of Fig. 7/8).
pub fn malware_ru(rng: &mut impl Rng) -> String {
    let syllables = rng.gen_range(5..9);
    format!("{}.ru", pronounceable(rng, syllables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn names_are_deterministic_per_stream() {
        let a = benign_domain(&mut derive_rng(1, &[0]));
        let b = benign_domain(&mut derive_rng(1, &[0]));
        assert_eq!(a, b);
    }

    #[test]
    fn dga_short_shape() {
        let mut rng = derive_rng(2, &[1]);
        for _ in 0..50 {
            let name = dga_short_info(&mut rng);
            let stem = name.strip_suffix(".info").unwrap();
            assert!(stem.len() == 4 || stem.len() == 5, "bad stem {stem}");
        }
    }

    #[test]
    fn dga_hex_shape() {
        let mut rng = derive_rng(2, &[2]);
        let name = dga_hex_info(&mut rng);
        let stem = name.strip_suffix(".info").unwrap();
        assert_eq!(stem.len(), 20);
        assert!(stem.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn ramdo_is_org() {
        let mut rng = derive_rng(2, &[3]);
        assert!(ramdo_org(&mut rng).ends_with(".org"));
    }

    #[test]
    fn lanl_names_are_unique_by_index() {
        let mut rng = derive_rng(3, &[0]);
        let a = lanl_domain(&mut rng, 1);
        let mut rng = derive_rng(3, &[0]);
        let b = lanl_domain(&mut rng, 2);
        assert_ne!(a, b);
        assert!(a.ends_with(".c3"));
    }

    #[test]
    fn benign_domains_have_two_labels() {
        let mut rng = derive_rng(4, &[0]);
        for _ in 0..20 {
            let d = benign_domain(&mut rng);
            assert_eq!(d.split('.').count(), 2, "{d}");
        }
    }
}
