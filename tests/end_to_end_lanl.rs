//! End-to-end integration: generate the synthetic LANL challenge, run the
//! full pipeline + belief propagation, and check the paper's qualitative
//! results — high TDR, low FDR/FNR across all four hint cases (Table III).

use earlybird::eval::lanl::{table2_grid, LanlRun};
use earlybird::synthgen::lanl::{ChallengeCase, LanlConfig, LanlGenerator};
use std::sync::OnceLock;

/// Generation plus the month-long pipeline run are expensive; all tests
/// share one completed run.
fn shared_run() -> &'static LanlRun<'static> {
    static RUN: OnceLock<LanlRun<'static>> = OnceLock::new();
    RUN.get_or_init(|| {
        let challenge = Box::leak(Box::new(LanlGenerator::new(LanlConfig::small()).generate()));
        LanlRun::new(challenge)
    })
}

#[test]
fn lanl_challenge_detection_quality() {
    let run = shared_run();
    let (table3, results) = run.table3();

    let rates = table3.overall_rates();
    assert!(rates.tdr >= 0.9, "paper: 98.33% TDR; shape requires >= 90%, got {:.4}", rates.tdr);
    assert!(rates.fdr <= 0.1, "paper: 1.67% FDR, got {:.4}", rates.fdr);
    assert!(rates.fnr <= 0.15, "paper: 6.35% FNR, got {:.4}", rates.fnr);

    // Every case must produce at least some detections.
    for case in [ChallengeCase::One, ChallengeCase::Two, ChallengeCase::Three, ChallengeCase::Four]
    {
        let tp: usize = results.iter().filter(|r| r.case == case).map(|r| r.true_positives).sum();
        assert!(tp > 0, "case {case:?} found nothing");
    }
}

#[test]
fn lanl_case3_discovers_other_compromised_hosts() {
    let run = shared_run();
    let challenge = run.challenge();
    let mut any_expansion = false;
    for campaign in challenge.campaigns.iter().filter(|c| c.case == ChallengeCase::Three) {
        let result = run.evaluate_campaign(campaign);
        // Case 3 starts from a single hint host; campaigns have >= 2
        // victims, so host expansion must discover the rest.
        let discovered: Vec<_> = result
            .outcome
            .compromised_hosts
            .iter()
            .filter(|h| !campaign.hint_hosts.contains(h))
            .collect();
        if !discovered.is_empty() {
            any_expansion = true;
        }
        // All discovered hosts must be actual victims (no innocent hosts).
        for host in &result.outcome.compromised_hosts {
            assert!(
                campaign.plan.victims.contains(host) || campaign.hint_hosts.contains(host),
                "host {host} wrongly marked compromised on 3/{}",
                campaign.march_day
            );
        }
    }
    assert!(any_expansion, "case 3 must discover non-hint victims");
}

#[test]
fn lanl_figure2_series_shape() {
    let run = shared_run();
    let rows = run.figure2(4, 10);
    assert!(!rows.is_empty());
    for r in &rows {
        // The Fig. 2 ordering: All >= filter-internal >= filter-servers
        // >= new >= rare.
        assert!(r.all >= r.filter_internal, "{r:?}");
        assert!(r.filter_internal >= r.filter_servers, "{r:?}");
        assert!(r.filter_servers >= r.new_destinations, "{r:?}");
        assert!(r.new_destinations >= r.rare_destinations, "{r:?}");
        assert!(r.rare_destinations > 0, "fresh domains appear daily: {r:?}");
    }
}

#[test]
fn lanl_table2_monotonicity() {
    let run = shared_run();
    let rows = run.table2(&table2_grid());
    assert_eq!(rows.len(), 10);

    // Fixing W, a larger J_T admits at least as many pairs (of every kind).
    for w in [5u64, 10, 20] {
        let mut of_w: Vec<_> = rows.iter().filter(|r| r.bin_width == w).collect();
        of_w.sort_by(|a, b| a.jt.partial_cmp(&b.jt).unwrap());
        for pair in of_w.windows(2) {
            assert!(pair[0].all_pairs_testing <= pair[1].all_pairs_testing);
            assert!(pair[0].malicious_pairs_training <= pair[1].malicious_pairs_training);
            assert!(pair[0].malicious_pairs_testing <= pair[1].malicious_pairs_testing);
        }
    }

    // The paper's chosen operating point (W=10, JT=0.06) captures all
    // malicious beacon pairs of the simulation.
    let chosen = rows.iter().find(|r| r.bin_width == 10 && (r.jt - 0.06).abs() < 1e-9).unwrap();
    let max_train = rows.iter().map(|r| r.malicious_pairs_training).max().unwrap();
    let max_test = rows.iter().map(|r| r.malicious_pairs_testing).max().unwrap();
    assert_eq!(
        chosen.malicious_pairs_training, max_train,
        "W=10/JT=0.06 captures training beacons"
    );
    assert_eq!(chosen.malicious_pairs_testing, max_test, "W=10/JT=0.06 captures testing beacons");
}

#[test]
fn lanl_figure3_malicious_gaps_are_shorter() {
    let run = shared_run();
    let fig3 = run.figure3();
    assert!(!fig3.malicious_malicious.is_empty());
    assert!(!fig3.malicious_legitimate.is_empty());
    let mm_below =
        earlybird::eval::lanl::Fig3Data::fraction_below(&fig3.malicious_malicious, 160.0);
    let ml_below =
        earlybird::eval::lanl::Fig3Data::fraction_below(&fig3.malicious_legitimate, 160.0);
    // Paper: 56% of malicious-malicious gaps < 160 s vs 3.8% for
    // malicious-legitimate. Require the qualitative separation.
    assert!(
        mm_below > 2.0 * ml_below,
        "mal-mal {mm_below:.3} must dominate mal-legit {ml_below:.3}"
    );
    assert!(mm_below > 0.5, "burst visits are close in time: {mm_below:.3}");
}

#[test]
fn lanl_figure4_trace_is_reconstructible() {
    let run = shared_run();
    let result = run.figure4(19).expect("3/19 hosts a case-3 campaign");
    assert!(result.true_positives > 0);
    // The trace must show iteration-by-iteration provenance.
    assert!(!result.outcome.iterations.is_empty());
    let first = &result.outcome.iterations[0];
    assert_eq!(first.iteration, 1);
    assert!(!first.labeled.is_empty(), "iteration 1 labels the C&C domain");
}
