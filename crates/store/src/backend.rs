//! Pluggable object-store backends for the snapshot lifecycle.
//!
//! [`StoreDir`](crate::lifecycle::StoreDir) owns the *policy* of a snapshot
//! store — the manifest, the chain ordering, compaction and retention — but
//! every durable operation flows through an [`ObjectStore`], so the same
//! lifecycle (and the same crash-fault suites) runs against any medium:
//!
//! * [`LocalFsBackend`] — a directory on the local filesystem, using the
//!   original tmp + fsync + rename commit discipline. Byte-compatible with
//!   stores written before the backend split: the same file names, the same
//!   `MANIFEST`, the same `quarantine/` sweep.
//! * [`MemBackend`] — an in-process store for fast tests and fault
//!   injection; clones share the same state, so a "reopened" store sees
//!   exactly what the "crashed" one committed.
//! * [`S3LiteBackend`] — an S3-style simulation: uploads are staged as
//!   multipart parts and become visible only at finalize (complete), the
//!   manifest swap is a *conditional put* on the generation counter, and
//!   abandoned uploads linger in the staging area until
//!   [`S3LiteBackend::abort_stale_uploads`] (the moral equivalent of a
//!   bucket lifecycle rule) reaps them. A real S3/GCS client drops into
//!   this adapter shape: `CreateMultipartUpload` / `UploadPart` /
//!   `CompleteMultipartUpload` for [`ObjectStore::put_atomic`], and
//!   `If-Match`-style conditional writes for [`ObjectStore::swap_manifest`].
//!
//! # The contract
//!
//! Whatever the medium, a backend must guarantee:
//!
//! 1. **`put_atomic` is visible-or-absent.** Bytes written through the
//!    returned [`ObjectUpload`] are staged (a `*.tmp` file, a buffered
//!    blob, multipart parts); the object appears under its final name only
//!    when [`ObjectUpload::finalize`] returns `Ok`. A crash or drop before
//!    that leaves at most staging residue, never a half-visible object.
//!    On the conditional backends finalize is also *create-only*: a name
//!    that already holds an object means another writer won the race for
//!    this generation, refused with a typed
//!    [`StoreError::ObjectConflict`] instead of clobbering the winner's
//!    committed bytes (`LocalFsBackend` again leans on the single-writer
//!    deployment).
//! 2. **`swap_manifest` is atomic**, and — where the medium supports it —
//!    *conditional* on the expected generation, so a concurrent writer
//!    loses with a typed [`StoreError::ManifestConflict`] instead of
//!    silently clobbering the chain. `LocalFsBackend` relies on
//!    rename-atomicity and a single-writer-per-directory deployment (POSIX
//!    rename cannot compare-and-swap); `MemBackend` and `S3LiteBackend`
//!    enforce the condition.
//! 3. **`list`/`get`/`delete`/`quarantine`** operate on the live namespace
//!    only; quarantined objects move to a separate namespace and never
//!    reappear in `list`.
//!
//! Crash-fault injection is a backend wrapper, not a filesystem hack:
//! [`FaultedStore`] accounts every mutating operation against a
//! [`FaultInjector`] and fails the N-th (and, like a dead process, every
//! one after it) — so the kill-at-every-mutation durability sweeps run
//! unchanged against all three backends.

use crate::error::{StoreError, StoreResult};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Name of the manifest object in every backend's live namespace.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Namespace prefix quarantined objects move under.
const QUARANTINE_PREFIX: &str = "quarantine/";

/// Namespace component scoped (per-tenant) stores live under: a directory
/// for [`LocalFsBackend`], a key prefix for the in-memory backends.
const SCOPE_PREFIX: &str = "tenants/";

// -- the trait --------------------------------------------------------------

/// One object in a backend's live namespace, as reported by
/// [`ObjectStore::list`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectInfo {
    /// The object's name (flat — chain names never contain separators).
    pub name: String,
    /// The object's size in bytes.
    pub bytes: u64,
}

/// A staged upload returned by [`ObjectStore::put_atomic`].
///
/// Bytes written through [`Write`] are staged; the object becomes visible
/// under its final name only when [`ObjectUpload::finalize`] returns `Ok`.
/// Dropping the handle abandons the upload: the object never appears, and
/// any staging residue (a temp file, staged multipart parts) is the next
/// open's quarantine/GC problem — exactly like a process that died
/// mid-upload.
pub trait ObjectUpload: Write + Send + fmt::Debug {
    /// Bytes staged so far (written through this handle).
    fn bytes_staged(&self) -> u64;

    /// Completes the upload, making the object visible under its final
    /// name. Visible-or-absent: after an error the object does not exist
    /// (it never replaces an object another writer already committed).
    ///
    /// # Errors
    ///
    /// [`StoreError::ObjectConflict`] when the name already holds an
    /// object (conditional backends — a lost concurrent-writer race);
    /// [`StoreError::Io`] on medium failures.
    fn finalize(self: Box<Self>) -> StoreResult<()>;
}

/// A durable object namespace the snapshot lifecycle can run on.
///
/// See the [module docs](self) for the atomicity contract each method must
/// uphold. All methods take `&self`: backends are internally synchronized
/// so a [`crate::lifecycle::PendingBlock`] can stage bytes while the
/// [`crate::lifecycle::StoreDir`] that spawned it is still usable for
/// reads.
pub trait ObjectStore: fmt::Debug + Send {
    /// Short static identifier (`"localfs"`, `"mem"`, `"s3lite"`) for
    /// error contexts and test matrices.
    fn kind(&self) -> &'static str;

    /// Human-readable location for error messages (a path, a bucket, ...).
    fn describe(&self) -> String {
        self.kind().to_string()
    }

    /// Begins a staged upload that will become visible as `name` only at
    /// [`ObjectUpload::finalize`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for an invalid object name;
    /// [`StoreError::ReadOnlyStore`] / [`StoreError::Io`] on medium
    /// failures.
    fn put_atomic(&self, name: &str) -> StoreResult<Box<dyn ObjectUpload>>;

    /// Opens an object for sequential reading.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the object is missing or unreadable.
    fn get(&self, name: &str) -> StoreResult<Box<dyn Read + Send>>;

    /// Lists the live namespace (excluding quarantine), in unspecified
    /// order.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failures.
    fn list(&self) -> StoreResult<Vec<ObjectInfo>>;

    /// Deletes an object from the live namespace.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the object cannot be removed.
    fn delete(&self, name: &str) -> StoreResult<()>;

    /// Moves an object out of the live namespace into quarantine,
    /// returning where it went (a path or a quarantine key). The object
    /// must no longer appear in [`ObjectStore::list`].
    ///
    /// # Errors
    ///
    /// [`StoreError::ReadOnlyStore`] / [`StoreError::Io`] on medium
    /// failures.
    fn quarantine(&self, name: &str) -> StoreResult<String>;

    /// Reads the current manifest bytes, `None` when no manifest has ever
    /// been committed (not a store yet).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failures.
    fn read_manifest(&self) -> StoreResult<Option<Vec<u8>>>;

    /// Atomically replaces the manifest, conditional on the caller's view
    /// of the current generation: `expected` is `None` when creating a
    /// fresh store, `Some(g)` when superseding the manifest the caller
    /// read at generation `g`; `next` is the generation recorded in
    /// `bytes`.
    ///
    /// Backends that can compare-and-swap refuse a stale `expected` with
    /// [`StoreError::ManifestConflict`]; [`LocalFsBackend`] cannot (POSIX
    /// rename is last-writer-wins) and documents a single-writer
    /// deployment instead.
    ///
    /// # Errors
    ///
    /// [`StoreError::ManifestConflict`] on a lost race (conditional
    /// backends); [`StoreError::ReadOnlyStore`] / [`StoreError::Io`] on
    /// medium failures.
    fn swap_manifest(&self, expected: Option<u64>, next: u64, bytes: &[u8]) -> StoreResult<()>;

    /// Verifies the backend accepts mutations, *without* mutating anything
    /// — called before a quarantine sweep so a read-only store fails up
    /// front with a typed, actionable error instead of mid-sweep with a
    /// raw I/O error.
    ///
    /// # Errors
    ///
    /// [`StoreError::ReadOnlyStore`] when the medium refuses writes.
    fn ensure_mutable(&self) -> StoreResult<()> {
        Ok(())
    }

    /// Opens an isolated child namespace of this backend (a *scope* — one
    /// tenant's store under a shared medium). Scoped handles have their
    /// own manifest, live namespace, and quarantine; their objects never
    /// collide with the parent's or a sibling scope's, so many
    /// [`crate::lifecycle::StoreDir`]s — one per tenant — can share one
    /// directory, memory map, or bucket. Scopes nest.
    ///
    /// Scope names are validated by [`validate_scope_name`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for an invalid scope name;
    /// [`StoreError::Io`] on medium failures.
    fn scope(&self, name: &str) -> StoreResult<Box<dyn ObjectStore>>;

    /// Lists the scope names directly under this backend that currently
    /// hold a manifest — i.e. the tenants a restarted service must
    /// restore — in unspecified order. A scope whose store was never
    /// created does not appear.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failures.
    fn scopes(&self) -> StoreResult<Vec<String>>;
}

/// Rejects object names that could escape a flat namespace (path
/// separators, `..`) or collide with the manifest.
fn validate_name(name: &str) -> StoreResult<()> {
    if name.is_empty() || name.contains(['/', '\\']) || name == ".." || name == MANIFEST_NAME {
        return Err(StoreError::corrupt(format!("invalid object name {name:?}")));
    }
    Ok(())
}

/// Validates a scope (tenant) name for [`ObjectStore::scope`]: 1–64
/// ASCII characters from `[A-Za-z0-9._-]`, not starting with a dot.
/// Stricter than object names — scope names become directory components
/// on the filesystem backend and path segments in service URLs, so the
/// conservative common denominator is enforced everywhere.
///
/// # Errors
///
/// [`StoreError::Corrupt`] describing the rejected name.
pub fn validate_scope_name(name: &str) -> StoreResult<()> {
    let charset_ok =
        name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    if name.is_empty() || name.len() > 64 || !charset_ok || name.starts_with('.') {
        return Err(StoreError::corrupt(format!(
            "invalid scope name {name:?}: use 1-64 characters of [A-Za-z0-9._-], not starting \
             with a dot"
        )));
    }
    Ok(())
}

// -- local filesystem -------------------------------------------------------

/// The original on-disk backend: a flat directory with tmp + fsync +
/// rename commits. Byte-compatible with stores written before the backend
/// split — the same chain file names, `MANIFEST` discipline, and
/// `quarantine/` subdirectory.
///
/// `swap_manifest` is atomic (rename) but **not** conditional: POSIX
/// rename cannot compare-and-swap, so the generation check degrades to the
/// single-writer-per-directory deployment the lifecycle has always
/// assumed. Use a conditional backend when multiple writers may race.
#[derive(Debug)]
pub struct LocalFsBackend {
    root: PathBuf,
}

impl LocalFsBackend {
    /// Opens (creating parents as needed) a directory as the backend root.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn new(root: impl Into<PathBuf>) -> StoreResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(LocalFsBackend { root })
    }

    /// The directory this backend owns.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// Wraps a permission failure as the typed, actionable
    /// [`StoreError::ReadOnlyStore`] (keeping the `io::Error` as the
    /// source); everything else stays [`StoreError::Io`].
    fn write_err(&self, e: io::Error) -> StoreError {
        if e.kind() == io::ErrorKind::PermissionDenied {
            StoreError::ReadOnlyStore { store: self.describe(), source: Some(e) }
        } else {
            StoreError::Io(e)
        }
    }

    fn sync_root(&self) {
        // Directory fsync is not portable everywhere; treat a refusal as
        // best-effort rather than a broken store.
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl ObjectStore for LocalFsBackend {
    fn kind(&self) -> &'static str {
        "localfs"
    }

    fn describe(&self) -> String {
        self.root.display().to_string()
    }

    fn put_atomic(&self, name: &str) -> StoreResult<Box<dyn ObjectUpload>> {
        validate_name(name)?;
        // A process-unique staging suffix: two outstanding uploads to the
        // same target never share a temp file (the `.tmp` extension keeps
        // residue sweepable by the quarantine pass).
        static STAGING: AtomicU64 = AtomicU64::new(0);
        let nonce = STAGING.fetch_add(1, Ordering::Relaxed);
        let tmp = self.root.join(format!("{name}.{nonce}.tmp"));
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| self.write_err(e))?;
        Ok(Box::new(LocalFsUpload {
            tmp,
            target: self.root.join(name),
            root: self.root.clone(),
            file,
            bytes: 0,
        }))
    }

    fn get(&self, name: &str) -> StoreResult<Box<dyn Read + Send>> {
        Ok(Box::new(File::open(self.root.join(name))?))
    }

    fn list(&self) -> StoreResult<Vec<ObjectInfo>> {
        let mut out = Vec::new();
        for dirent in fs::read_dir(&self.root)? {
            let dirent = dirent?;
            // Subdirectories (quarantine/ among them) are not objects.
            if !dirent.file_type()?.is_file() {
                continue;
            }
            let name = dirent.file_name().to_string_lossy().into_owned();
            out.push(ObjectInfo { name, bytes: dirent.metadata()?.len() });
        }
        Ok(out)
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        fs::remove_file(self.root.join(name)).map_err(|e| self.write_err(e))
    }

    fn quarantine(&self, name: &str) -> StoreResult<String> {
        let quarantine = self.root.join(QUARANTINE_PREFIX.trim_end_matches('/'));
        fs::create_dir_all(&quarantine).map_err(|e| self.write_err(e))?;
        let mut target = quarantine.join(name);
        let mut suffix = 0u32;
        while target.exists() {
            suffix += 1;
            target = quarantine.join(format!("{name}.{suffix}"));
        }
        fs::rename(self.root.join(name), &target).map_err(|e| self.write_err(e))?;
        Ok(target.display().to_string())
    }

    fn read_manifest(&self) -> StoreResult<Option<Vec<u8>>> {
        match fs::read(self.root.join(MANIFEST_NAME)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn swap_manifest(&self, _expected: Option<u64>, _next: u64, bytes: &[u8]) -> StoreResult<()> {
        // Single-writer deployment: atomicity comes from the rename, the
        // generation condition is not checkable on POSIX.
        let tmp = self.root.join("MANIFEST.tmp");
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| self.write_err(e))?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(MANIFEST_NAME)).map_err(|e| self.write_err(e))?;
        self.sync_root();
        Ok(())
    }

    fn ensure_mutable(&self) -> StoreResult<()> {
        let meta = fs::metadata(&self.root)?;
        if meta.permissions().readonly() {
            return Err(StoreError::ReadOnlyStore { store: self.describe(), source: None });
        }
        Ok(())
    }

    fn scope(&self, name: &str) -> StoreResult<Box<dyn ObjectStore>> {
        validate_scope_name(name)?;
        let root = self.root.join(SCOPE_PREFIX.trim_end_matches('/')).join(name);
        Ok(Box::new(LocalFsBackend::new(root)?))
    }

    fn scopes(&self) -> StoreResult<Vec<String>> {
        let tenants = self.root.join(SCOPE_PREFIX.trim_end_matches('/'));
        let mut out = Vec::new();
        let entries = match fs::read_dir(&tenants) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for dirent in entries {
            let dirent = dirent?;
            if !dirent.file_type()?.is_dir() {
                continue;
            }
            // A scope exists once its store was created — i.e. once it
            // holds a manifest. Residue directories are not scopes.
            if dirent.path().join(MANIFEST_NAME).is_file() {
                out.push(dirent.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(out)
    }
}

/// The staged side of [`LocalFsBackend::put_atomic`]: a `{name}.tmp` file
/// that is fsynced and renamed into place at finalize. A dropped handle
/// leaves the temp file behind (like a dead process would) for the next
/// open's quarantine sweep.
#[derive(Debug)]
struct LocalFsUpload {
    tmp: PathBuf,
    target: PathBuf,
    root: PathBuf,
    file: File,
    bytes: u64,
}

impl Write for LocalFsUpload {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.file.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl ObjectUpload for LocalFsUpload {
    fn bytes_staged(&self) -> u64 {
        self.bytes
    }

    fn finalize(mut self: Box<Self>) -> StoreResult<()> {
        // The same PermissionDenied mapping every other LocalFs write path
        // gets (see `LocalFsBackend::write_err`): a directory gone
        // read-only between begin and commit is the typed, actionable
        // error, not a raw I/O failure.
        let ro = |store: &PathBuf, e: io::Error| {
            if e.kind() == io::ErrorKind::PermissionDenied {
                StoreError::ReadOnlyStore { store: store.display().to_string(), source: Some(e) }
            } else {
                StoreError::Io(e)
            }
        };
        self.file.flush().map_err(|e| ro(&self.root, e))?;
        self.file.sync_all().map_err(|e| ro(&self.root, e))?;
        fs::rename(&self.tmp, &self.target).map_err(|e| ro(&self.root, e))?;
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }
}

// -- shared in-memory plumbing ----------------------------------------------

/// `Read` over shared immutable bytes (what `get` hands out so a reader
/// outlives the backend lock).
#[derive(Debug)]
struct SharedBytes(io::Cursor<ArcBytes>);

#[derive(Debug)]
struct ArcBytes(Arc<Vec<u8>>);

impl AsRef<[u8]> for ArcBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Read for SharedBytes {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

fn lock_state<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding the lock poisons it; the state itself is
    // always consistent (mutations are single assignments), so recover.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn missing(name: &str, kind: &str) -> StoreError {
    StoreError::Io(io::Error::new(
        io::ErrorKind::NotFound,
        format!("object {name:?} not found in {kind} store"),
    ))
}

/// The map-shaped service state the in-memory backends share: live
/// objects, the quarantine namespace, and the generation-tagged manifests
/// (one per scope — the root store's lives under the empty prefix). One
/// implementation of the get/list/delete/quarantine/manifest semantics
/// that [`MemBackend`] and [`S3LiteBackend`] both defer to, so the two can
/// never silently diverge. Scoped handles carry a key prefix
/// (`tenants/<name>/`, nested as needed) into every call; keys inside a
/// scope are flat, so prefix membership is unambiguous.
#[derive(Clone, Debug, Default)]
struct ObjectMap {
    objects: BTreeMap<String, Arc<Vec<u8>>>,
    quarantine: BTreeMap<String, Arc<Vec<u8>>>,
    manifests: BTreeMap<String, (u64, Vec<u8>)>,
}

impl ObjectMap {
    fn get(&self, prefix: &str, name: &str, kind: &str) -> StoreResult<Box<dyn Read + Send>> {
        let key = format!("{prefix}{name}");
        let bytes = self.objects.get(&key).ok_or_else(|| missing(name, kind))?;
        Ok(Box::new(SharedBytes(io::Cursor::new(ArcBytes(Arc::clone(bytes))))))
    }

    fn list(&self, prefix: &str) -> Vec<ObjectInfo> {
        self.objects
            .iter()
            .filter_map(|(key, bytes)| {
                let name = key.strip_prefix(prefix)?;
                // Deeper keys belong to child scopes, not this namespace.
                if name.contains('/') {
                    return None;
                }
                Some(ObjectInfo { name: name.to_string(), bytes: bytes.len() as u64 })
            })
            .collect()
    }

    fn delete(&mut self, prefix: &str, name: &str, kind: &str) -> StoreResult<()> {
        let key = format!("{prefix}{name}");
        self.objects.remove(&key).map(|_| ()).ok_or_else(|| missing(name, kind))
    }

    fn quarantine(&mut self, prefix: &str, name: &str, kind: &str) -> StoreResult<String> {
        let bytes =
            self.objects.remove(&format!("{prefix}{name}")).ok_or_else(|| missing(name, kind))?;
        let mut key = format!("{prefix}{QUARANTINE_PREFIX}{name}");
        let mut suffix = 0u32;
        while self.quarantine.contains_key(&key) {
            suffix += 1;
            key = format!("{prefix}{QUARANTINE_PREFIX}{name}.{suffix}");
        }
        self.quarantine.insert(key.clone(), bytes);
        Ok(key)
    }

    fn read_manifest(&self, prefix: &str) -> Option<Vec<u8>> {
        self.manifests.get(prefix).map(|(_, bytes)| bytes.clone())
    }

    fn swap_manifest(
        &mut self,
        prefix: &str,
        expected: Option<u64>,
        next: u64,
        bytes: &[u8],
    ) -> StoreResult<()> {
        let found = self.manifests.get(prefix).map(|(g, _)| *g);
        if found != expected {
            return Err(StoreError::ManifestConflict { expected, found });
        }
        self.manifests.insert(prefix.to_string(), (next, bytes.to_vec()));
        Ok(())
    }

    /// Create-only commit of a finished upload: a name that already holds
    /// an object means another writer won the race for this generation —
    /// refused typed, never clobbered.
    fn insert_new(&mut self, key: String, bytes: Vec<u8>) -> StoreResult<()> {
        if self.objects.contains_key(&key) {
            let name = key.rsplit('/').next().unwrap_or(&key).to_string();
            return Err(StoreError::ObjectConflict { name });
        }
        self.objects.insert(key, Arc::new(bytes));
        Ok(())
    }

    /// Scope names directly under `prefix` whose store holds a manifest.
    fn scopes(&self, prefix: &str) -> Vec<String> {
        let base = format!("{prefix}{SCOPE_PREFIX}");
        self.manifests
            .keys()
            .filter_map(|key| {
                let rest = key.strip_prefix(&base)?;
                let name = rest.strip_suffix('/')?;
                // Exactly one path segment: deeper keys are nested scopes.
                if name.is_empty() || name.contains('/') {
                    return None;
                }
                Some(name.to_string())
            })
            .collect()
    }
}

/// Key prefix of the child scope `name` under `prefix`.
fn child_prefix(prefix: &str, name: &str) -> StoreResult<String> {
    validate_scope_name(name)?;
    Ok(format!("{prefix}{SCOPE_PREFIX}{name}/"))
}

// -- in-memory backend ------------------------------------------------------

/// An in-process [`ObjectStore`] for fast tests and fault injection.
///
/// Clones share state: keep one handle, hand a clone to a `StoreDir`, let
/// that "process" die, and reopen from the surviving handle — the
/// in-memory equivalent of reopening a directory after a crash.
/// `swap_manifest` enforces the generation condition (lost races surface
/// as [`StoreError::ManifestConflict`]) and finalize is create-only (a
/// raced object name is [`StoreError::ObjectConflict`], never a clobber).
#[derive(Clone, Debug, Default)]
pub struct MemBackend {
    state: Arc<Mutex<ObjectMap>>,
    /// Key prefix of this handle's scope (empty for the root namespace).
    prefix: String,
}

impl MemBackend {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// A deep copy with its own independent state (unlike [`Clone`], which
    /// shares) — for tests that replay many crashes against one fixture.
    /// Child scopes are copied too; the fork views the same scope as
    /// `self`.
    pub fn fork(&self) -> Self {
        let map = lock_state(&self.state).clone();
        MemBackend { state: Arc::new(Mutex::new(map)), prefix: self.prefix.clone() }
    }
}

impl ObjectStore for MemBackend {
    fn kind(&self) -> &'static str {
        "mem"
    }

    fn describe(&self) -> String {
        if self.prefix.is_empty() {
            self.kind().to_string()
        } else {
            format!("{}:{}", self.kind(), self.prefix)
        }
    }

    fn put_atomic(&self, name: &str) -> StoreResult<Box<dyn ObjectUpload>> {
        validate_name(name)?;
        Ok(Box::new(MemUpload {
            state: Arc::clone(&self.state),
            key: format!("{}{name}", self.prefix),
            buf: Vec::new(),
        }))
    }

    fn get(&self, name: &str) -> StoreResult<Box<dyn Read + Send>> {
        lock_state(&self.state).get(&self.prefix, name, self.kind())
    }

    fn list(&self) -> StoreResult<Vec<ObjectInfo>> {
        Ok(lock_state(&self.state).list(&self.prefix))
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        lock_state(&self.state).delete(&self.prefix, name, self.kind())
    }

    fn quarantine(&self, name: &str) -> StoreResult<String> {
        lock_state(&self.state).quarantine(&self.prefix, name, self.kind())
    }

    fn read_manifest(&self) -> StoreResult<Option<Vec<u8>>> {
        Ok(lock_state(&self.state).read_manifest(&self.prefix))
    }

    fn swap_manifest(&self, expected: Option<u64>, next: u64, bytes: &[u8]) -> StoreResult<()> {
        lock_state(&self.state).swap_manifest(&self.prefix, expected, next, bytes)
    }

    fn scope(&self, name: &str) -> StoreResult<Box<dyn ObjectStore>> {
        Ok(Box::new(MemBackend {
            state: Arc::clone(&self.state),
            prefix: child_prefix(&self.prefix, name)?,
        }))
    }

    fn scopes(&self) -> StoreResult<Vec<String>> {
        Ok(lock_state(&self.state).scopes(&self.prefix))
    }
}

/// Client-side staging for [`MemBackend`]: bytes buffer in the handle and
/// install as one atomic, create-only map insert at finalize.
#[derive(Debug)]
struct MemUpload {
    state: Arc<Mutex<ObjectMap>>,
    key: String,
    buf: Vec<u8>,
}

impl Write for MemUpload {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl ObjectUpload for MemUpload {
    fn bytes_staged(&self) -> u64 {
        self.buf.len() as u64
    }

    fn finalize(self: Box<Self>) -> StoreResult<()> {
        lock_state(&self.state).insert_new(self.key, self.buf)
    }
}

// -- S3-style backend -------------------------------------------------------

#[derive(Debug)]
struct StagedUpload {
    key: String,
    parts: Vec<Vec<u8>>,
}

#[derive(Debug, Default)]
struct S3State {
    map: ObjectMap,
    uploads: BTreeMap<u64, StagedUpload>,
    next_upload: u64,
}

/// An S3-style [`ObjectStore`] simulation: multipart uploads staged
/// server-side, finalize-or-abort visibility, and a conditional manifest
/// swap on the generation counter.
///
/// The simulation keeps the *protocol shape* of a real object store while
/// staying in memory: [`ObjectStore::put_atomic`] opens a multipart
/// upload, each `part_size` bytes become one staged part
/// (`UploadPart`), and [`ObjectUpload::finalize`] completes the upload —
/// only then does the object appear. A handle dropped mid-upload (a dead
/// process) leaves its parts in the staging area, invisible to
/// [`ObjectStore::list`], until [`S3LiteBackend::abort_stale_uploads`]
/// reaps them — the same hygiene a bucket lifecycle rule provides in
/// production. [`ObjectStore::swap_manifest`] is a conditional put: a
/// stale expected generation is refused with
/// [`StoreError::ManifestConflict`], which is what makes multi-writer
/// deployments safe.
///
/// Clones share the simulated service (like [`MemBackend`]); use
/// [`S3LiteBackend::fork`] for an independent deep copy.
#[derive(Clone, Debug)]
pub struct S3LiteBackend {
    state: Arc<Mutex<S3State>>,
    part_size: usize,
    /// Key prefix of this handle's scope (empty for the root namespace).
    prefix: String,
}

impl S3LiteBackend {
    /// Part size used by [`S3LiteBackend::new`] (real S3 enforces a 5 MiB
    /// minimum; the simulation uses a small size so test blocks actually
    /// exercise multi-part paths).
    pub const DEFAULT_PART_SIZE: usize = 64 * 1024;

    /// A fresh simulated service with the default part size.
    pub fn new() -> Self {
        Self::with_part_size(Self::DEFAULT_PART_SIZE)
    }

    /// A fresh simulated service splitting uploads every `part_size`
    /// bytes (clamped to at least 1).
    pub fn with_part_size(part_size: usize) -> Self {
        S3LiteBackend {
            state: Arc::new(Mutex::new(S3State::default())),
            part_size: part_size.max(1),
            prefix: String::new(),
        }
    }

    /// A deep copy with its own independent service state (unlike
    /// [`Clone`], which shares). Child scopes are copied too; the fork
    /// views the same scope as `self`.
    pub fn fork(&self) -> Self {
        let s = lock_state(&self.state);
        S3LiteBackend {
            state: Arc::new(Mutex::new(S3State {
                map: s.map.clone(),
                uploads: BTreeMap::new(),
                next_upload: s.next_upload,
            })),
            part_size: self.part_size,
            prefix: self.prefix.clone(),
        }
    }

    /// Multipart uploads currently staged (opened but neither completed
    /// nor aborted) — crash residue in a real bucket.
    pub fn staged_uploads(&self) -> usize {
        lock_state(&self.state).uploads.len()
    }

    /// Aborts every staged multipart upload (the bucket-lifecycle-rule
    /// cleanup), returning how many were reaped.
    pub fn abort_stale_uploads(&self) -> usize {
        let mut s = lock_state(&self.state);
        let n = s.uploads.len();
        s.uploads.clear();
        n
    }
}

impl Default for S3LiteBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ObjectStore for S3LiteBackend {
    fn kind(&self) -> &'static str {
        "s3lite"
    }

    fn describe(&self) -> String {
        if self.prefix.is_empty() {
            self.kind().to_string()
        } else {
            format!("{}:{}", self.kind(), self.prefix)
        }
    }

    fn put_atomic(&self, name: &str) -> StoreResult<Box<dyn ObjectUpload>> {
        validate_name(name)?;
        let mut s = lock_state(&self.state);
        let upload_id = s.next_upload;
        s.next_upload += 1;
        let key = format!("{}{name}", self.prefix);
        s.uploads.insert(upload_id, StagedUpload { key, parts: Vec::new() });
        Ok(Box::new(S3Upload {
            state: Arc::clone(&self.state),
            upload_id,
            part_size: self.part_size,
            buf: Vec::new(),
            staged: 0,
        }))
    }

    fn get(&self, name: &str) -> StoreResult<Box<dyn Read + Send>> {
        lock_state(&self.state).map.get(&self.prefix, name, self.kind())
    }

    fn list(&self) -> StoreResult<Vec<ObjectInfo>> {
        Ok(lock_state(&self.state).map.list(&self.prefix))
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        lock_state(&self.state).map.delete(&self.prefix, name, self.kind())
    }

    fn quarantine(&self, name: &str) -> StoreResult<String> {
        lock_state(&self.state).map.quarantine(&self.prefix, name, self.kind())
    }

    fn read_manifest(&self) -> StoreResult<Option<Vec<u8>>> {
        Ok(lock_state(&self.state).map.read_manifest(&self.prefix))
    }

    fn swap_manifest(&self, expected: Option<u64>, next: u64, bytes: &[u8]) -> StoreResult<()> {
        lock_state(&self.state).map.swap_manifest(&self.prefix, expected, next, bytes)
    }

    fn scope(&self, name: &str) -> StoreResult<Box<dyn ObjectStore>> {
        Ok(Box::new(S3LiteBackend {
            state: Arc::clone(&self.state),
            part_size: self.part_size,
            prefix: child_prefix(&self.prefix, name)?,
        }))
    }

    fn scopes(&self) -> StoreResult<Vec<String>> {
        Ok(lock_state(&self.state).map.scopes(&self.prefix))
    }
}

/// One multipart upload session: bytes buffer client-side until a full
/// part is ready, each part is staged with the service, and finalize
/// completes the upload (concatenating parts into the visible object).
#[derive(Debug)]
struct S3Upload {
    state: Arc<Mutex<S3State>>,
    upload_id: u64,
    part_size: usize,
    buf: Vec<u8>,
    staged: u64,
}

impl S3Upload {
    fn stage_part(&mut self, part: Vec<u8>) -> io::Result<()> {
        let mut s = lock_state(&self.state);
        let upload = s.uploads.get_mut(&self.upload_id).ok_or_else(|| {
            io::Error::other(format!("multipart upload {} was aborted", self.upload_id))
        })?;
        upload.parts.push(part);
        Ok(())
    }
}

impl Write for S3Upload {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        self.staged += buf.len() as u64;
        while self.buf.len() >= self.part_size {
            let rest = self.buf.split_off(self.part_size);
            let part = std::mem::replace(&mut self.buf, rest);
            self.stage_part(part)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl ObjectUpload for S3Upload {
    fn bytes_staged(&self) -> u64 {
        self.staged
    }

    fn finalize(mut self: Box<Self>) -> StoreResult<()> {
        if !self.buf.is_empty() {
            let tail = std::mem::take(&mut self.buf);
            self.stage_part(tail)?;
        }
        let mut s = lock_state(&self.state);
        let upload = s.uploads.remove(&self.upload_id).ok_or_else(|| {
            StoreError::Io(io::Error::other(format!(
                "multipart upload {} was aborted before completion",
                self.upload_id
            )))
        })?;
        let mut whole = Vec::with_capacity(upload.parts.iter().map(Vec::len).sum());
        for part in upload.parts {
            whole.extend_from_slice(&part);
        }
        s.map.insert_new(upload.key, whole)
    }
}

// -- fault injection --------------------------------------------------------

/// Deterministic crash simulation for durability tests: fails the N-th
/// backend mutation (and every one after it, like a dead process).
///
/// Production code never arms this; the crash-at-every-mutation suites use
/// it — through a [`FaultedStore`] wrapper around any backend — to kill
/// the lifecycle at every staging write, finalize, manifest swap, delete,
/// and quarantine point, and prove `StoreDir::open` always recovers a
/// valid chain. The countdown is shared by clones, so a pending upload
/// split off a store dies with it.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    /// `-1` = disarmed; `0` = dead (every op fails); `n > 0` = ops left.
    countdown: Arc<AtomicI64>,
    /// Whether an operation has actually been failed.
    fired: Arc<AtomicBool>,
}

impl FaultInjector {
    /// A disarmed injector (all operations succeed).
    pub fn new() -> Self {
        FaultInjector {
            countdown: Arc::new(AtomicI64::new(-1)),
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Arms the injector: the `ops`-th subsequent backend mutation (0 =
    /// the very next one) fails with an injected I/O error, as does every
    /// operation after it.
    pub fn arm(&self, ops: u64) {
        self.fired.store(false, Ordering::SeqCst);
        self.countdown.store(ops.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Disarms the injector.
    pub fn disarm(&self) {
        self.countdown.store(-1, Ordering::SeqCst);
    }

    /// Whether the injected crash has actually failed an operation (the
    /// armed countdown may also simply outlive the run).
    pub fn crashed(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Accounts one backend mutation, failing if the crash point has been
    /// reached.
    fn tick(&self, op: &'static str) -> StoreResult<()> {
        let left = self.countdown.load(Ordering::SeqCst);
        if left < 0 {
            return Ok(());
        }
        if left == 0 {
            self.fired.store(true, Ordering::SeqCst);
            return Err(StoreError::Io(io::Error::other(format!("injected crash at {op}"))));
        }
        self.countdown.store(left - 1, Ordering::SeqCst);
        Ok(())
    }

    /// [`FaultInjector::tick`] for `io::Result` contexts (upload writes).
    fn tick_io(&self, op: &'static str) -> io::Result<()> {
        self.tick(op).map_err(|e| match e {
            StoreError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        })
    }

    /// Fails (without consuming a countdown step) once the injector has
    /// fired: a dead process cannot read either.
    fn fail_if_dead(&self, op: &'static str) -> StoreResult<()> {
        if self.countdown.load(Ordering::SeqCst) == 0 && self.crashed() {
            return Err(StoreError::Io(io::Error::other(format!("store dead at {op}"))));
        }
        Ok(())
    }
}

/// A backend wrapper accounting every mutation against a
/// [`FaultInjector`] — the crash harness for *any* [`ObjectStore`].
///
/// Mutation points (each consumes one countdown step): upload begin, every
/// staged write, finalize, manifest swap, delete, quarantine. Once the
/// fault fires, reads fail too (the process is dead); recovery always goes
/// through a fresh, unfaulted store handle.
#[derive(Debug)]
pub struct FaultedStore {
    inner: Box<dyn ObjectStore>,
    fault: FaultInjector,
}

impl FaultedStore {
    /// Wraps `inner`, accounting its mutations against `fault`.
    pub fn new(inner: impl ObjectStore + 'static, fault: FaultInjector) -> Self {
        FaultedStore { inner: Box::new(inner), fault }
    }

    /// [`FaultedStore::new`] for an already-boxed backend.
    pub fn boxed(inner: Box<dyn ObjectStore>, fault: FaultInjector) -> Self {
        FaultedStore { inner, fault }
    }
}

impl ObjectStore for FaultedStore {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn put_atomic(&self, name: &str) -> StoreResult<Box<dyn ObjectUpload>> {
        self.fault.tick("begin of an object upload")?;
        let inner = self.inner.put_atomic(name)?;
        Ok(Box::new(FaultedUpload { inner, fault: self.fault.clone() }))
    }

    fn get(&self, name: &str) -> StoreResult<Box<dyn Read + Send>> {
        self.fault.fail_if_dead("object read")?;
        self.inner.get(name)
    }

    fn list(&self) -> StoreResult<Vec<ObjectInfo>> {
        self.fault.fail_if_dead("object listing")?;
        self.inner.list()
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        self.fault.tick("deletion of an object")?;
        self.inner.delete(name)
    }

    fn quarantine(&self, name: &str) -> StoreResult<String> {
        self.fault.tick("quarantine of an object")?;
        self.inner.quarantine(name)
    }

    fn read_manifest(&self) -> StoreResult<Option<Vec<u8>>> {
        self.fault.fail_if_dead("manifest read")?;
        self.inner.read_manifest()
    }

    fn swap_manifest(&self, expected: Option<u64>, next: u64, bytes: &[u8]) -> StoreResult<()> {
        self.fault.tick("swap of the manifest")?;
        self.inner.swap_manifest(expected, next, bytes)
    }

    fn ensure_mutable(&self) -> StoreResult<()> {
        self.fault.fail_if_dead("mutability probe")?;
        self.inner.ensure_mutable()
    }

    fn scope(&self, name: &str) -> StoreResult<Box<dyn ObjectStore>> {
        // Scoped handles stay under the same injector: one countdown
        // spans every tenant of the simulated process, like one dying
        // process takes all its tenants' writes with it.
        self.fault.fail_if_dead("scope open")?;
        let inner = self.inner.scope(name)?;
        Ok(Box::new(FaultedStore { inner, fault: self.fault.clone() }))
    }

    fn scopes(&self) -> StoreResult<Vec<String>> {
        self.fault.fail_if_dead("scope listing")?;
        self.inner.scopes()
    }
}

#[derive(Debug)]
struct FaultedUpload {
    inner: Box<dyn ObjectUpload>,
    fault: FaultInjector,
}

impl Write for FaultedUpload {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.fault.tick_io("staged write of a pending object")?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl ObjectUpload for FaultedUpload {
    fn bytes_staged(&self) -> u64 {
        self.inner.bytes_staged()
    }

    fn finalize(self: Box<Self>) -> StoreResult<()> {
        self.fault.tick("finalize of an object upload")?;
        self.inner.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One temp dir per calling test (libtest runs tests on parallel
    /// threads; a shared dir would let one test sweep another's files).
    fn backends(tag: &str) -> Vec<Box<dyn ObjectStore>> {
        let root = std::env::temp_dir()
            .join(format!("earlybird-backend-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        vec![
            Box::new(LocalFsBackend::new(&root).unwrap()),
            Box::new(MemBackend::new()),
            Box::new(S3LiteBackend::with_part_size(7)),
        ]
    }

    #[test]
    fn put_is_visible_or_absent_on_every_backend() {
        for backend in backends("visible-or-absent") {
            let kind = backend.kind();
            // Abandoned upload: never visible.
            let mut up = backend.put_atomic("blob.ebstore").unwrap();
            up.write_all(b"half-written").unwrap();
            drop(up);
            assert!(
                backend.get("blob.ebstore").is_err(),
                "{kind}: abandoned upload must not be visible"
            );

            // Finalized upload: visible with exactly the staged bytes.
            let payload: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
            let mut up = backend.put_atomic("blob.ebstore").unwrap();
            up.write_all(&payload).unwrap();
            assert_eq!(up.bytes_staged(), payload.len() as u64, "{kind}");
            up.finalize().unwrap();
            let mut back = Vec::new();
            backend.get("blob.ebstore").unwrap().read_to_end(&mut back).unwrap();
            assert_eq!(back, payload, "{kind}: roundtrip");
            let listed = backend.list().unwrap();
            let found = listed.iter().find(|o| o.name == "blob.ebstore");
            assert_eq!(
                found.map(|o| o.bytes),
                Some(payload.len() as u64),
                "{kind}: list reports the object; got {listed:?}"
            );

            // Quarantine removes it from the live namespace.
            backend.quarantine("blob.ebstore").unwrap();
            assert!(backend.get("blob.ebstore").is_err(), "{kind}: quarantined object gone");
            assert!(
                backend.list().unwrap().iter().all(|o| o.name != "blob.ebstore"),
                "{kind}: quarantined object not listed"
            );
        }
    }

    #[test]
    fn invalid_object_names_are_refused() {
        for backend in backends("invalid-names") {
            for name in ["", "a/b", "..", "MANIFEST", "a\\b"] {
                assert!(
                    matches!(backend.put_atomic(name), Err(StoreError::Corrupt { .. })),
                    "{}: name {name:?} must be refused",
                    backend.kind()
                );
            }
        }
    }

    #[test]
    fn conditional_manifest_swap_enforces_generations() {
        for backend in
            [Box::new(MemBackend::new()) as Box<dyn ObjectStore>, Box::new(S3LiteBackend::new())]
        {
            let kind = backend.kind();
            assert_eq!(backend.read_manifest().unwrap(), None, "{kind}");
            // Creating over nothing requires expected = None.
            assert!(matches!(
                backend.swap_manifest(Some(0), 1, b"m1"),
                Err(StoreError::ManifestConflict { expected: Some(0), found: None })
            ));
            backend.swap_manifest(None, 0, b"m0").unwrap();
            // Creating twice loses.
            assert!(matches!(
                backend.swap_manifest(None, 0, b"m0'"),
                Err(StoreError::ManifestConflict { expected: None, found: Some(0) })
            ));
            backend.swap_manifest(Some(0), 1, b"m1").unwrap();
            // A writer that still believes generation 0 loses.
            assert!(matches!(
                backend.swap_manifest(Some(0), 2, b"stale"),
                Err(StoreError::ManifestConflict { expected: Some(0), found: Some(1) })
            ));
            assert_eq!(backend.read_manifest().unwrap().as_deref(), Some(&b"m1"[..]), "{kind}");
        }
    }

    #[test]
    fn s3lite_stages_multipart_and_reaps_aborted_uploads() {
        let backend = S3LiteBackend::with_part_size(4);
        let mut up = backend.put_atomic("part.ebstore").unwrap();
        up.write_all(b"0123456789").unwrap(); // 2 full parts staged, 2 bytes buffered
        assert_eq!(backend.staged_uploads(), 1);
        drop(up); // dead process: parts linger in staging
        assert_eq!(backend.staged_uploads(), 1, "aborted upload stays staged");
        assert!(backend.get("part.ebstore").is_err(), "never became visible");
        assert_eq!(backend.abort_stale_uploads(), 1, "lifecycle rule reaps it");
        assert_eq!(backend.staged_uploads(), 0);

        // A finalized upload spanning several parts is byte-exact.
        let mut up = backend.put_atomic("part.ebstore").unwrap();
        up.write_all(b"0123456789").unwrap();
        up.finalize().unwrap();
        let mut back = Vec::new();
        backend.get("part.ebstore").unwrap().read_to_end(&mut back).unwrap();
        assert_eq!(back, b"0123456789");
    }

    #[test]
    fn finalize_is_create_only_and_never_clobbers_a_committed_object() {
        for backend in [
            Box::new(MemBackend::new()) as Box<dyn ObjectStore>,
            Box::new(S3LiteBackend::with_part_size(4)),
        ] {
            let kind = backend.kind();
            // Two racing uploads to the same generation-derived name, with
            // *different* bytes so a clobber would be visible.
            let mut winner = backend.put_atomic("seg-000002.ebstore").unwrap();
            let mut loser = backend.put_atomic("seg-000002.ebstore").unwrap();
            winner.write_all(b"winner bytes").unwrap();
            loser.write_all(b"loser bytes, longer").unwrap();
            winner.finalize().unwrap();
            let err = loser.finalize().expect_err("the raced finalize must be refused");
            assert!(matches!(err, StoreError::ObjectConflict { .. }), "{kind}: {err}");

            // The winner's committed bytes are untouched.
            let mut back = Vec::new();
            backend.get("seg-000002.ebstore").unwrap().read_to_end(&mut back).unwrap();
            assert_eq!(back, b"winner bytes", "{kind}: winner's object intact");
        }
    }

    #[test]
    fn faulted_store_kills_the_nth_mutation_and_stays_dead() {
        let fault = FaultInjector::new();
        let store = FaultedStore::new(MemBackend::new(), fault.clone());
        store.swap_manifest(None, 0, b"m").unwrap();

        // Fault at the finalize (begin=0, write=1, finalize=2).
        fault.arm(2);
        let mut up = store.put_atomic("x.ebstore").unwrap();
        up.write_all(b"payload").unwrap();
        let err = up.finalize().expect_err("finalize must crash");
        assert!(matches!(err, StoreError::Io(_)), "{err}");
        assert!(fault.crashed());
        // Dead: reads fail too, without consuming countdown.
        assert!(store.list().is_err());
        assert!(store.get("x.ebstore").is_err());
        assert!(store.swap_manifest(Some(0), 1, b"m2").is_err());

        fault.disarm();
        assert!(store.list().unwrap().is_empty(), "crashed upload never became visible");
    }

    #[test]
    fn scopes_are_isolated_namespaces_on_every_backend() {
        for backend in backends("scopes") {
            let kind = backend.kind();
            let t1 = backend.scope("acme").unwrap();
            let t2 = backend.scope("globex").unwrap();

            // Same object name in two scopes and at the root: three
            // distinct objects.
            for (store, payload) in
                [(&*backend, &b"root"[..]), (&*t1, b"tenant-acme"), (&*t2, b"tenant-globex")]
            {
                let mut up = store.put_atomic("full-000001.ebstore").unwrap();
                up.write_all(payload).unwrap();
                up.finalize().unwrap();
            }
            for (store, payload) in
                [(&*backend, &b"root"[..]), (&*t1, b"tenant-acme"), (&*t2, b"tenant-globex")]
            {
                let mut back = Vec::new();
                store.get("full-000001.ebstore").unwrap().read_to_end(&mut back).unwrap();
                assert_eq!(back, payload, "{kind}: scope sees its own bytes");
                let listed = store.list().unwrap();
                assert_eq!(listed.len(), 1, "{kind}: exactly its own object; got {listed:?}");
            }

            // Manifests are per scope.
            t1.swap_manifest(None, 0, b"m-acme").unwrap();
            assert_eq!(backend.read_manifest().unwrap(), None, "{kind}: root manifest untouched");
            assert_eq!(t2.read_manifest().unwrap(), None, "{kind}: sibling manifest untouched");
            assert_eq!(t1.read_manifest().unwrap().as_deref(), Some(&b"m-acme"[..]), "{kind}");

            // Only scopes holding a manifest are listed.
            assert_eq!(backend.scopes().unwrap(), vec!["acme".to_string()], "{kind}");
            t2.swap_manifest(None, 0, b"m-globex").unwrap();
            let mut names = backend.scopes().unwrap();
            names.sort();
            assert_eq!(names, ["acme", "globex"], "{kind}");

            // Quarantine inside a scope does not leak into siblings.
            // (LocalFs `list` also reports the MANIFEST file; callers
            // skip it by name, so these counts do too.)
            let chain = |store: &dyn ObjectStore| {
                store.list().unwrap().into_iter().filter(|o| o.name != MANIFEST_NAME).count()
            };
            t1.quarantine("full-000001.ebstore").unwrap();
            assert_eq!(chain(&*t1), 0, "{kind}: quarantined out of scope namespace");
            assert_eq!(chain(&*t2), 1, "{kind}: sibling untouched");
            assert_eq!(chain(&*backend), 1, "{kind}: root untouched");
        }
    }

    #[test]
    fn invalid_scope_names_are_refused() {
        for backend in backends("scope-names") {
            for name in ["", "a/b", "..", ".", ".hidden", "a\\b", "sp ace", "a:b"] {
                assert!(
                    matches!(backend.scope(name), Err(StoreError::Corrupt { .. })),
                    "{}: scope name {name:?} must be refused",
                    backend.kind()
                );
            }
            let long = "x".repeat(65);
            assert!(backend.scope(&long).is_err(), "{}: over-long name", backend.kind());
            assert!(backend.scope("t-1.prod_A").is_ok(), "{}: sane name", backend.kind());
        }
    }

    #[test]
    fn faulted_store_scopes_share_the_crash_countdown() {
        let fault = FaultInjector::new();
        let store = FaultedStore::new(MemBackend::new(), fault.clone());
        let tenant = store.scope("acme").unwrap();

        // begin=0, write=1 → finalize is the third mutation and dies.
        fault.arm(2);
        let mut up = tenant.put_atomic("x.ebstore").unwrap();
        up.write_all(b"payload").unwrap();
        assert!(up.finalize().is_err(), "scoped finalize crashes");
        assert!(fault.crashed());
        // The whole simulated process is dead: root reads fail too.
        assert!(store.list().is_err());
        assert!(store.scope("other").is_err());
        fault.disarm();
        assert!(tenant.list().unwrap().is_empty(), "crashed scoped upload never visible");
    }
}
