//! Detection metrics (§V-C, §VI-B).
//!
//! * **TDR** — true detection rate: true positives over all detections.
//! * **FDR** — false detection rate: `1 - TDR`.
//! * **FNR** — false negative rate: missed malicious domains over all
//!   malicious domains.
//! * **NDR** — new-discovery rate: detections unknown to both VirusTotal
//!   and the SOC over all detections.

use serde::{Deserialize, Serialize};

/// Aggregated detection counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionTally {
    /// Detected and truly malicious/suspicious.
    pub true_positives: usize,
    /// Detected but benign.
    pub false_positives: usize,
    /// Malicious but not detected.
    pub false_negatives: usize,
    /// Detected, truly positive, and unknown to VT/SOC (new discoveries).
    pub new_discoveries: usize,
}

impl DetectionTally {
    /// Accumulates another tally.
    pub fn add(&mut self, other: DetectionTally) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.new_discoveries += other.new_discoveries;
    }

    /// All detections (TP + FP).
    pub fn detected(&self) -> usize {
        self.true_positives + self.false_positives
    }

    /// Derived rates.
    pub fn rates(&self) -> Rates {
        let detected = self.detected();
        let tdr = if detected == 0 { 0.0 } else { self.true_positives as f64 / detected as f64 };
        let malicious = self.true_positives + self.false_negatives;
        let fnr = if malicious == 0 { 0.0 } else { self.false_negatives as f64 / malicious as f64 };
        let ndr = if detected == 0 { 0.0 } else { self.new_discoveries as f64 / detected as f64 };
        Rates { tdr, fdr: 1.0 - tdr, fnr, ndr }
    }
}

/// Derived detection rates, each in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rates {
    /// True detection rate.
    pub tdr: f64,
    /// False detection rate (`1 - tdr`).
    pub fdr: f64,
    /// False negative rate.
    pub fnr: f64,
    /// New-discovery rate.
    pub ndr: f64,
}

impl Rates {
    /// Formats a rate as a percentage with two decimals (paper style).
    pub fn pct(x: f64) -> String {
        format!("{:.2}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overall_numbers_reproduce() {
        // Table III totals: 59 TP, 1 FP, 4 FN -> TDR 98.33%, FDR 1.67%,
        // FNR 6.35%.
        let t = DetectionTally {
            true_positives: 59,
            false_positives: 1,
            false_negatives: 4,
            new_discoveries: 0,
        };
        let r = t.rates();
        assert!((r.tdr - 0.9833).abs() < 1e-3, "tdr = {}", r.tdr);
        assert!((r.fdr - 0.0167).abs() < 1e-3);
        assert!((r.fnr - 0.0635).abs() < 1e-3);
        assert_eq!(Rates::pct(r.tdr), "98.33%");
    }

    #[test]
    fn ndr_counts_unknown_positives() {
        // Fig. 6(b) at threshold 0.33: 265 detected, 70 new -> NDR 26.4%.
        let t = DetectionTally {
            true_positives: 202,
            false_positives: 63,
            false_negatives: 0,
            new_discoveries: 70,
        };
        assert!((t.rates().ndr - 0.264).abs() < 1e-3);
    }

    #[test]
    fn empty_tally_has_zero_rates() {
        let r = DetectionTally::default().rates();
        assert_eq!(r.tdr, 0.0);
        assert_eq!(r.fnr, 0.0);
        assert_eq!(r.ndr, 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut a = DetectionTally {
            true_positives: 1,
            false_positives: 2,
            false_negatives: 3,
            new_discoveries: 0,
        };
        a.add(DetectionTally {
            true_positives: 10,
            false_positives: 0,
            false_negatives: 1,
            new_discoveries: 4,
        });
        assert_eq!(a.true_positives, 11);
        assert_eq!(a.detected(), 13);
        assert_eq!(a.false_negatives, 4);
    }
}
