//! Cross-crate pipeline integration through the Engine facade:
//! generator → normalization → reduction → histories → rare sieve → index,
//! checked for internal consistency on both dataset flavours.

use earlybird::engine::{DayBatch, Engine, EngineBuilder};
use earlybird::logmodel::{Day, HostKind};
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

fn lanl_engine(challenge: &earlybird::synthgen::lanl::LanlChallenge) -> Engine {
    EngineBuilder::lanl()
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config")
}

fn ac_engine(world: &earlybird::synthgen::ac::AcWorld) -> Engine {
    EngineBuilder::enterprise()
        .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
        .expect("valid config")
}

#[test]
fn dns_pipeline_invariants_hold_over_a_month() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let mut engine = lanl_engine(&challenge);

    let mut prev_history = 0usize;
    for day_log in &challenge.dataset.days {
        let report = engine.ingest_day(DayBatch::Dns(day_log));
        let counts = report.dns_counts.expect("DNS batches carry DNS counts");
        assert!(counts.records_a_only <= counts.records_all);
        if !report.bootstrap {
            let index = engine.day_index(day_log.day).expect("operation day retained");
            // Rare domains are a subset of post-reduction domains.
            assert!(index.rare_count() <= counts.domains_after_server_filter);
            assert!(index.new_count() >= index.rare_count());
            assert_eq!(report.stages.rare_destinations, index.rare_count());
            // Every rare domain has at least one host and fewer than the
            // unpopularity threshold.
            for dom in index.rare_domains() {
                let conn = index.connectivity(dom);
                assert!((1..10).contains(&conn), "connectivity {conn} out of rare bounds");
            }
            // host_rdom and dom_host agree.
            for dom in index.rare_domains() {
                for host in index.hosts_of(dom).unwrap() {
                    assert!(
                        index.rare_domains_of(*host).unwrap().contains(&dom),
                        "bipartite maps inconsistent"
                    );
                }
            }
        }
        // The history only grows.
        assert!(engine.history().len() >= prev_history);
        prev_history = engine.history().len();
    }
}

#[test]
fn proxy_pipeline_resolves_hosts_and_tracks_uas() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    let mut engine = ac_engine(&world);

    for day_log in &world.dataset.days[..(meta.bootstrap_days as usize)] {
        let report = engine.ingest_day(DayBatch::Proxy { day: day_log, dhcp: &world.dataset.dhcp });
        assert!(report.bootstrap);
    }
    assert!(!engine.ua_history().is_empty(), "UA profiles built during bootstrap");

    let feb1 = world.dataset.day(Day::new(meta.bootstrap_days)).unwrap();
    let report = engine.ingest_day(DayBatch::Proxy { day: feb1, dhcp: &world.dataset.dhcp });
    let norm = report.norm_counts.unwrap();
    assert!(norm.output > 0);
    assert_eq!(norm.input, norm.output + norm.dropped_unresolvable + norm.dropped_ip_literal);
    let index = engine.day_index(feb1.day).expect("operation day retained");
    assert!(index.has_http());

    // HTTP fractions are defined and bounded for rare domains.
    for dom in index.rare_domains() {
        let no_ref = index.no_ref_fraction(dom).unwrap();
        let rare_ua = index.rare_ua_fraction(dom).unwrap();
        assert!((0.0..=1.0).contains(&no_ref));
        assert!((0.0..=1.0).contains(&rare_ua));
    }
}

#[test]
fn server_traffic_never_reaches_the_index() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let servers: Vec<u32> =
        (0..meta.n_hosts).filter(|&h| meta.host_kinds[h as usize] == HostKind::Server).collect();
    assert!(!servers.is_empty());

    // Treat every day as an operation day so day 0 is indexed.
    let mut engine = EngineBuilder::lanl()
        .bootstrap_days(0)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));
    let index = engine.day_index(Day::new(0)).unwrap();
    for &server in &servers {
        assert!(
            index.rare_domains_of(earlybird::logmodel::HostId::new(server)).is_none(),
            "server {server} must be filtered"
        );
    }
}

#[test]
fn rare_domains_stop_being_rare_once_seen() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let mut engine = EngineBuilder::lanl()
        .bootstrap_days(0)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");

    let day0 = engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));
    assert!(day0.stages.rare_destinations > 0);

    // Re-processing the same batch the "next day": every domain is now in
    // the history, so nothing is new.
    let mut replay = challenge.dataset.days[0].clone();
    replay.day = Day::new(1);
    for q in &mut replay.queries {
        q.ts = Day::new(1).start() + q.ts.secs_of_day();
    }
    let day1 = engine.ingest_day(DayBatch::Dns(&replay));
    assert_eq!(day1.stages.new_destinations, 0, "no domain is new on replay");
    assert_eq!(day1.stages.rare_destinations, 0);
}
