//! Chunk-split equivalence of the streaming ingest path: for *any* way of
//! splitting a day into `begin_day` + `push_*` chunks — including raw-line
//! pushes and parallel worker counts — the resulting [`DayReport`]s, alert
//! streams, and retained engine state must be identical to `ingest_day`
//! over the whole batch.

use earlybird::engine::{DayBatch, DayReport, Engine, EngineBuilder, IngestSource, Investigation};
use earlybird::logmodel::{
    format_dns_line, DatasetMeta, Day, DnsDayLog, DnsQuery, DnsRecordType, HostId, HostKind, Ipv4,
    Timestamp,
};
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use earlybird_engine::CollectingSink;
use proptest::prelude::*;
use std::sync::Arc;

/// Full-report equality modulo wall-clock time.
fn assert_reports_equal(streamed: &DayReport, batch: &DayReport, context: &str) {
    assert_eq!(streamed.day, batch.day, "{context}: day");
    assert_eq!(streamed.bootstrap, batch.bootstrap, "{context}: bootstrap flag");
    assert_eq!(streamed.duplicate, batch.duplicate, "{context}: duplicate flag");
    assert!(
        streamed.stages.deterministic_eq(&batch.stages),
        "{context}: counters\n  streamed: {:?}\n  batch:    {:?}",
        streamed.stages,
        batch.stages
    );
    assert_eq!(streamed.dns_counts, batch.dns_counts, "{context}: dns counts");
    assert_eq!(streamed.proxy_counts, batch.proxy_counts, "{context}: proxy counts");
    assert_eq!(streamed.norm_counts, batch.norm_counts, "{context}: norm counts");
    assert_eq!(streamed.cc_candidates, batch.cc_candidates, "{context}: candidates");
    assert_eq!(streamed.alerts, batch.alerts, "{context}: alerts");
    assert_eq!(streamed.outcome, batch.outcome, "{context}: BP outcome");
}

/// A random traffic day with a guaranteed beaconing campaign blended in, so
/// the C&C / alert / BP stages always have real work to compare.
fn build_queries(
    raw: &[(u64, u32, u8)],
    domains: &Arc<earlybird::logmodel::DomainInterner>,
) -> Vec<DnsQuery> {
    let mut queries: Vec<DnsQuery> = raw
        .iter()
        .map(|&(ts, host, dom)| DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(host),
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            qname: domains.intern(&format!("d{dom}.example.c3")),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(50, dom, dom, 1)),
        })
        .collect();
    for host in [1u32, 2] {
        for beat in 0..20 {
            queries.push(DnsQuery {
                ts: Timestamp::from_secs(30_000 + host as u64 * 7 + beat * 600),
                src: HostId::new(host),
                src_ip: Ipv4::new(10, 0, 0, host as u8),
                qname: domains.intern("cc.alpha.c3"),
                qtype: DnsRecordType::A,
                answer: Some(Ipv4::new(198, 51, 100, 99)),
            });
        }
    }
    queries.sort_by_key(|q| q.ts);
    queries
}

fn meta_for(n_hosts: u32) -> DatasetMeta {
    DatasetMeta {
        n_hosts,
        host_kinds: vec![HostKind::Workstation; n_hosts as usize],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 1,
    }
}

fn engine_for(
    domains: &Arc<earlybird::logmodel::DomainInterner>,
    meta: &DatasetMeta,
    parallelism: usize,
    chunk_records: usize,
) -> (Engine, earlybird::engine::CollectedAlerts) {
    let sink = CollectingSink::new();
    let handle = sink.handle();
    let engine = EngineBuilder::lanl()
        .parallelism(parallelism)
        .parallel_threshold(1)
        .ingest_chunk_records(chunk_records)
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(domains), meta.clone())
        .expect("valid config");
    (engine, handle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary chunk splits of the same day, `begin_day` + `push_dns_records`
    /// + `finish` must reproduce `ingest_day` exactly: counters, candidates,
    /// alerts (including sink sequence order), and BP outcome.
    #[test]
    fn chunked_pushes_match_whole_batch(
        raw in proptest::collection::vec((0u64..86_400, 0u32..12, 0u8..16), 1..200),
        splits in proptest::collection::vec(1usize..40, 0..8),
        parallelism in 1usize..5,
        chunk_records in 1usize..64,
    ) {
        let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
        let queries = build_queries(&raw, &domains);
        let meta = meta_for(12);

        let (mut batch_engine, batch_alerts) = engine_for(&domains, &meta, 1, usize::MAX);
        let day_log = DnsDayLog { day: Day::new(0), queries: queries.clone() };
        let batch_report = batch_engine.ingest_day(DayBatch::Dns(&day_log));

        let (mut stream_engine, stream_alerts) =
            engine_for(&domains, &meta, parallelism, chunk_records);
        let mut ingest = stream_engine.begin_day(Day::new(0), IngestSource::Dns);
        // Carve the day along the random split points; the tail goes last.
        let mut rest: &[DnsQuery] = &queries;
        for &len in &splits {
            let take = len.min(rest.len());
            let (span, remaining) = rest.split_at(take);
            ingest.push_dns_records(span);
            rest = remaining;
        }
        ingest.push_dns_records(rest);
        prop_assert_eq!(ingest.records_pushed(), queries.len());
        let stream_report = ingest.finish();

        assert_reports_equal(&stream_report, &batch_report, "proptest day");
        prop_assert_eq!(stream_alerts.snapshot(), batch_alerts.snapshot());
        prop_assert_eq!(stream_engine.history().len(), batch_engine.history().len());

        // Post-hoc investigation over the retained day agrees too.
        let by_stream = stream_engine.investigate(Day::new(0), Investigation::no_hint());
        let by_batch = batch_engine.investigate(Day::new(0), Investigation::no_hint());
        match (by_stream, by_batch) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.outcome, b.outcome),
            (a, b) => prop_assert_eq!(a.is_err(), b.is_err()),
        }
    }
}

/// The whole LANL challenge, streamed in fixed-size chunks with parallel
/// workers, is indistinguishable from batch ingestion: every day report,
/// the full alert sequence, and the retained-day set.
#[test]
fn lanl_challenge_streams_identically() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;

    let (mut batch_engine, batch_alerts) = engine_for(&challenge.dataset.domains, meta, 1, 1 << 20);
    let (mut stream_engine, stream_alerts) = engine_for(&challenge.dataset.domains, meta, 4, 64);

    for day in &challenge.dataset.days {
        let batch_report = batch_engine.ingest_day(DayBatch::Dns(day));
        let mut ingest = stream_engine.begin_day(day.day, IngestSource::Dns);
        for span in day.queries.chunks(777) {
            ingest.push_dns_records(span);
        }
        let stream_report = ingest.finish();
        assert_reports_equal(&stream_report, &batch_report, &format!("day {:?}", day.day));
    }
    assert_eq!(stream_alerts.snapshot(), batch_alerts.snapshot());
    assert!(!stream_alerts.snapshot().is_empty(), "campaigns must alert");
    assert_eq!(stream_engine.days().collect::<Vec<_>>(), batch_engine.days().collect::<Vec<_>>());

    // Campaign investigations on the streamed engine match the batch one.
    for campaign in &challenge.campaigns {
        let a = stream_engine
            .investigate(
                campaign.day,
                Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied()),
            )
            .unwrap();
        let b = batch_engine
            .investigate(
                campaign.day,
                Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied()),
            )
            .unwrap();
        assert_eq!(a.outcome, b.outcome, "campaign 3/{}", campaign.march_day);
    }
}

/// Proxy days (normalization + DHCP resolution + HTTP context) stream
/// identically as well.
#[test]
fn proxy_days_stream_identically() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;

    let build = |parallelism: usize, chunk: usize| {
        let sink = CollectingSink::new();
        let handle = sink.handle();
        let engine = EngineBuilder::enterprise()
            .parallelism(parallelism)
            .parallel_threshold(1)
            .ingest_chunk_records(chunk)
            .auto_investigate(true)
            .sink(sink)
            .build(Arc::clone(&world.dataset.domains), meta.clone())
            .expect("valid config");
        (engine, handle)
    };
    let (mut batch_engine, batch_alerts) = build(1, 1 << 20);
    let (mut stream_engine, stream_alerts) = build(4, 50);

    // Cover the bootstrap/operation boundary plus several operation days.
    let last = (meta.bootstrap_days + 6).min(meta.total_days) as usize;
    for day in &world.dataset.days[..last] {
        let batch_report =
            batch_engine.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp });
        let mut ingest =
            stream_engine.begin_day(day.day, IngestSource::Proxy { dhcp: &world.dataset.dhcp });
        for span in day.records.chunks(311) {
            ingest.push_proxy_records(span);
        }
        let stream_report = ingest.finish();
        assert_reports_equal(&stream_report, &batch_report, &format!("proxy day {:?}", day.day));
    }
    assert_eq!(stream_alerts.snapshot(), batch_alerts.snapshot());
    assert_eq!(stream_engine.ua_history().len(), batch_engine.ua_history().len());
}

/// Raw-line ingestion matches record ingestion: same records, same report,
/// and parse failures are tallied without derailing the day.
#[test]
fn line_pushes_match_record_pushes() {
    let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
    let raw: Vec<(u64, u32, u8)> =
        (0..150u64).map(|i| (i * 37 % 86_400, (i % 9) as u32, (i % 11) as u8)).collect();
    let queries = build_queries(&raw, &domains);
    let meta = meta_for(12);

    // Reference: records pushed straight in.
    let (mut rec_engine, rec_alerts) = engine_for(&domains, &meta, 2, 16);
    let mut ingest = rec_engine.begin_day(Day::new(0), IngestSource::Dns);
    ingest.push_dns_records(&queries);
    let rec_report = ingest.finish();

    // Lines: serialize with the interchange codec, then stream the text in
    // three blocks with a corrupt line and comments sprinkled in.
    // Note host ids are assigned by first-seen source IP in line order,
    // which matches the generator's numbering here.
    let lines: Vec<String> = queries.iter().map(|q| format_dns_line(q, &domains)).collect();
    let (mut line_engine, line_alerts) = engine_for(&domains, &meta, 3, 16);
    let mut ingest = line_engine.begin_day(Day::new(0), IngestSource::Dns);
    let third = lines.len() / 3;
    let block1 = format!("# header comment\n{}\n", lines[..third].join("\n"));
    let block2 = format!("{}\nthis line is corrupt\n", lines[third..2 * third].join("\n"));
    let block3 = format!("{}\n\n", lines[2 * third..].join("\n"));
    assert!(ingest.push_lines(&block1).is_empty());
    let errors = ingest.push_lines(&block2);
    assert_eq!(errors.len(), 1, "exactly the corrupt line fails");
    assert!(ingest.push_lines(&block3).is_empty());
    assert_eq!(ingest.records_pushed(), queries.len());
    assert_eq!(ingest.parse_errors(), 1);
    let line_report = ingest.finish();

    assert_eq!(line_report.stages.parse_errors, 1);
    let mut expected = rec_report.stages;
    expected.parse_errors = 1; // the only permitted difference
    assert!(line_report.stages.deterministic_eq(&expected), "{:?}", line_report.stages);
    assert_eq!(line_report.cc_candidates, rec_report.cc_candidates);
    assert_eq!(line_report.alerts, rec_report.alerts);
    assert_eq!(line_alerts.snapshot(), rec_alerts.snapshot());
}

/// Degenerate adversarial split: every record arrives in its own push and
/// every raw line in its own `push_lines` call (with comments and `\r\n`
/// endings sprinkled in) — reports and alert streams still match
/// whole-batch ingestion exactly.
#[test]
fn one_record_and_one_line_chunks_match_batch() {
    let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
    let raw: Vec<(u64, u32, u8)> =
        (0..150u64).map(|i| (i * 37 % 86_400, (i % 9) as u32, (i % 11) as u8)).collect();
    let queries = build_queries(&raw, &domains);
    let meta = meta_for(12);

    let (mut batch_engine, batch_alerts) = engine_for(&domains, &meta, 1, usize::MAX);
    let day_log = DnsDayLog { day: Day::new(0), queries: queries.clone() };
    let batch_report = batch_engine.ingest_day(DayBatch::Dns(&day_log));

    // Record path: one record per push.
    let (mut rec_engine, rec_alerts) = engine_for(&domains, &meta, 4, 1);
    let mut ingest = rec_engine.begin_day(Day::new(0), IngestSource::Dns);
    for q in &queries {
        ingest.push_dns_records(std::slice::from_ref(q));
    }
    let rec_report = ingest.finish();
    assert_reports_equal(&rec_report, &batch_report, "1-record chunks");
    assert_eq!(rec_alerts.snapshot(), batch_alerts.snapshot());

    // Line path: one raw line per push.
    let (mut line_engine, line_alerts) = engine_for(&domains, &meta, 4, 1);
    let mut ingest = line_engine.begin_day(Day::new(0), IngestSource::Dns);
    for (i, q) in queries.iter().enumerate() {
        if i % 17 == 0 {
            assert!(ingest.push_lines("# interstitial comment\n").is_empty());
        }
        let line = format_dns_line(q, &domains);
        let block = if i % 2 == 0 { format!("{line}\n") } else { format!("{line}\r\n") };
        assert!(ingest.push_lines(&block).is_empty());
    }
    assert_eq!(ingest.records_pushed(), queries.len());
    let line_report = ingest.finish();
    assert_reports_equal(&line_report, &batch_report, "1-line chunks");
    assert_eq!(line_alerts.snapshot(), batch_alerts.snapshot());
}

/// Interleaved DNS and proxy days on one engine, each streamed in
/// degenerate 1-record chunks, match batch ingestion day for day — the
/// shared fold/filter/history state must not care how days arrive.
#[test]
fn interleaved_dns_and_proxy_days_stream_identically() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    let domains = &world.dataset.domains;

    let build = |parallelism: usize, chunk: usize| {
        let sink = CollectingSink::new();
        let handle = sink.handle();
        let engine = EngineBuilder::enterprise()
            .parallelism(parallelism)
            .parallel_threshold(1)
            .ingest_chunk_records(chunk)
            .auto_investigate(true)
            .sink(sink)
            .build(Arc::clone(domains), meta.clone())
            .expect("valid config");
        (engine, handle)
    };
    let (mut batch_engine, batch_alerts) = build(1, 1 << 20);
    let (mut stream_engine, stream_alerts) = build(4, 1);

    let last = (meta.bootstrap_days + 4).min(meta.total_days) as usize;
    for (i, day) in world.dataset.days[..last].iter().enumerate() {
        if i % 2 == 0 {
            let batch_report =
                batch_engine.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp });
            let mut ingest =
                stream_engine.begin_day(day.day, IngestSource::Proxy { dhcp: &world.dataset.dhcp });
            for r in &day.records {
                ingest.push_proxy_records(std::slice::from_ref(r));
            }
            let stream_report = ingest.finish();
            assert_reports_equal(&stream_report, &batch_report, &format!("proxy day {i}"));
        } else {
            // A synthetic DNS day over the same interner and host space.
            let queries: Vec<DnsQuery> = (0..200u64)
                .map(|j| {
                    let host = (j % u64::from(meta.n_hosts.min(8))) as u32;
                    DnsQuery {
                        ts: Timestamp::from_day_secs(day.day, (j * 431) % 86_400),
                        src: HostId::new(host),
                        src_ip: Ipv4::new(10, 1, 0, host as u8),
                        qname: domains.intern(&format!("d{}.interleaved.example", j % 23)),
                        qtype: DnsRecordType::A,
                        answer: Some(Ipv4::new(60, (j % 23) as u8, 1, 1)),
                    }
                })
                .collect();
            let mut queries = queries;
            queries.sort_by_key(|q| q.ts);
            let dns_day = DnsDayLog { day: day.day, queries };
            let batch_report = batch_engine.ingest_day(DayBatch::Dns(&dns_day));
            let mut ingest = stream_engine.begin_day(day.day, IngestSource::Dns);
            for q in &dns_day.queries {
                ingest.push_dns_records(std::slice::from_ref(q));
            }
            let stream_report = ingest.finish();
            assert_reports_equal(&stream_report, &batch_report, &format!("dns day {i}"));
        }
    }
    assert_eq!(stream_alerts.snapshot(), batch_alerts.snapshot());
    assert_eq!(stream_engine.days().collect::<Vec<_>>(), batch_engine.days().collect::<Vec<_>>());
}

/// Replays through the streaming handle are no-ops flagged as duplicates,
/// exactly like `ingest_day` replays.
#[test]
fn streamed_replay_is_a_flagged_noop() {
    let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
    let queries = build_queries(&[(100, 3, 1), (200, 4, 2)], &domains);
    let meta = meta_for(12);
    let (mut engine, _alerts) = engine_for(&domains, &meta, 2, 8);

    let mut first = engine.begin_day(Day::new(0), IngestSource::Dns);
    first.push_dns_records(&queries);
    let first_report = first.finish();
    assert!(!first_report.duplicate);
    let history_len = engine.history().len();

    let mut replay = engine.begin_day(Day::new(0), IngestSource::Dns);
    assert!(replay.is_duplicate());
    replay.push_dns_records(&queries); // must be a no-op
    let replay_report = replay.finish();
    assert!(replay_report.duplicate);
    assert_eq!(engine.history().len(), history_len, "profiles not double-counted");
    assert_eq!(replay_report.stages.rare_destinations, first_report.stages.rare_destinations);
}

#[test]
#[should_panic(expected = "proxy-source")]
fn dns_push_into_proxy_day_panics() {
    let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
    let meta = meta_for(4);
    let (mut engine, _alerts) = engine_for(&domains, &meta, 1, 8);
    let dhcp = earlybird::logmodel::DhcpLog::new();
    let queries = build_queries(&[(100, 1, 1)], &domains);
    let mut ingest = engine.begin_day(Day::new(0), IngestSource::Proxy { dhcp: &dhcp });
    ingest.push_dns_records(&queries);
}
