//! Regenerates every table and figure of the DSN'15 paper on the synthetic
//! datasets and prints them next to the paper's reference values.
//!
//! Usage:
//!   experiments               # run everything at full scale
//!   experiments --small       # run at test scale (fast)
//!   experiments --json DIR    # additionally write JSON artifacts to DIR
//!   experiments --fig2        # run a single experiment (any of:
//!                             #   table1 table2 table3 fig2 fig3 fig4 fig5
//!                             #   fig6a fig6b fig6c fig7 fig8 regression
//!                             #   evasion)

use earlybird_eval::evasion::{evasion_study, JITTER_LEVELS};
use earlybird_eval::lanl::{table2_grid, LanlRun};
use earlybird_eval::report::{cdf_points, render_table};
use earlybird_eval::{AcHarness, Fig6Row, Rates};
use earlybird_synthgen::lanl::CHALLENGE_SCHEDULE;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let json_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create JSON output dir");
    }
    let consumed_by_json: Vec<usize> =
        args.iter().position(|a| a == "--json").map(|i| vec![i, i + 1]).unwrap_or_default();
    let wanted: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| *a != "--small" && !consumed_by_json.contains(i))
        .map(|(_, a)| a.trim_start_matches("--"))
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);
    let dump = |name: &str, value: &dyn erased::Dump| {
        if let Some(dir) = &json_dir {
            value.dump(&dir.join(format!("{name}.json")));
        }
    };

    let lanl_needed =
        ["table1", "table2", "table3", "fig2", "fig3", "fig4"].iter().any(|e| want(e));
    if want("evasion") {
        let rows = evasion();
        dump("evasion", &rows);
    }
    let ac_needed =
        ["fig5", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "regression"].iter().any(|e| want(e));

    if want("table1") {
        table1();
    }

    if lanl_needed {
        eprintln!("[experiments] generating LANL dataset...");
        let challenge =
            if small { earlybird_bench::lanl_world() } else { earlybird_bench::lanl_world_full() };
        eprintln!(
            "[experiments] {} DNS queries / {} days",
            challenge.dataset.total_queries(),
            challenge.dataset.days.len()
        );
        let run = LanlRun::new(&challenge);
        if want("fig2") {
            fig2(&run);
            dump("fig2", &run.figure2(4, 10));
        }
        if want("table2") {
            table2(&run);
            dump("table2", &run.table2(&table2_grid()));
        }
        if want("fig3") {
            fig3(&run);
            dump("fig3", &run.figure3());
        }
        if want("table3") {
            table3(&run);
            dump("table3", &run.table3().0);
        }
        if want("fig4") {
            fig4(&run);
        }
    }

    if ac_needed {
        eprintln!("[experiments] generating AC dataset...");
        let world =
            if small { earlybird_bench::ac_world() } else { earlybird_bench::ac_world_full() };
        eprintln!(
            "[experiments] {} proxy records / {} days",
            world.dataset.total_records(),
            world.dataset.days.len()
        );
        let harness = AcHarness::build(&world).expect("training population suffices");
        if want("regression") {
            regression(&harness);
        }
        if want("fig5") {
            fig5(&harness);
        }
        if want("fig6a") {
            let rows = harness.figure6a(&[0.40, 0.42, 0.44, 0.45, 0.46, 0.48]);
            fig6(
                "Figure 6(a) — C&C detections vs threshold",
                "paper: 114 -> 19 domains, TDR 85.08% -> 94.7%",
                &rows,
            );
            dump("fig6a", &rows);
        }
        if want("fig6b") {
            let rows = harness.figure6b(0.4, &[0.33, 0.50, 0.65, 0.75, 0.85]);
            fig6(
                "Figure 6(b) — no-hint belief propagation vs T_s",
                "paper: 265 -> 114 domains, TDR 76.2% -> 85.1%, NDR 26.4% at 0.33",
                &rows,
            );
            dump("fig6b", &rows);
        }
        if want("fig6c") {
            let rows = harness.figure6c(&[0.33, 0.37, 0.40, 0.41, 0.45]);
            fig6(
                "Figure 6(c) — SOC-hints belief propagation vs T_s",
                "paper: 137 -> 73 domains, TDR 78.8% -> 94.6%; 29 new findings incl. hex DGA",
                &rows,
            );
            dump("fig6c", &rows);
        }
        if want("fig7") {
            case_study(&harness, false);
        }
        if want("fig8") {
            case_study(&harness, true);
        }
    }
}

/// Type-erased JSON dumping so `dump` can take heterogeneous artifacts.
mod erased {
    use std::path::Path;

    pub trait Dump {
        fn dump(&self, path: &Path);
    }

    impl<T: serde::Serialize> Dump for T {
        fn dump(&self, path: &Path) {
            earlybird_eval::export::write_json(path, self).expect("write JSON artifact");
            eprintln!("[experiments] wrote {}", path.display());
        }
    }
}

fn evasion() -> Vec<earlybird_eval::EvasionRow> {
    println!("\n== Evasion study (§VIII) — beacon jitter vs detection rate ==");
    println!("paper claims: resilient to small randomization; wider (W, J_T) buys resilience;");
    println!("fully randomized timing evades every timing-based detector");
    let rows = evasion_study(7, 100);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let jitter = if r.jitter_secs == u64::MAX {
                "random".to_string()
            } else {
                format!("{}s", r.jitter_secs)
            };
            vec![
                jitter,
                format!("{:.0}%", r.paper_detector * 100.0),
                format!("{:.0}%", r.wide_detector * 100.0),
                format!("{:.0}%", r.stddev_baseline * 100.0),
                format!("{:.0}%", r.autocorr_baseline * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "jitter",
                "paper (W=10, JT=.06)",
                "wide (W=30, JT=.35)",
                "stddev baseline",
                "autocorr baseline"
            ],
            &table
        )
    );
    assert_eq!(rows.len(), JITTER_LEVELS.len());
    rows
}

fn table1() {
    println!("\n== Table I — the four LANL challenge cases ==");
    let mut rows = Vec::new();
    for case in 1..=4u32 {
        let days: Vec<String> = CHALLENGE_SCHEDULE
            .iter()
            .filter(|(_, c)| c.number() == case)
            .map(|(d, _)| format!("3/{d}"))
            .collect();
        let hint = match case {
            1 => "one per day",
            2 => "three or four per day",
            3 => "one per day (+ other hosts to find)",
            _ => "no hints",
        };
        rows.push(vec![format!("Case {case}"), days.join(" "), hint.to_string()]);
    }
    println!("{}", render_table(&["case", "March days", "hint hosts"], &rows));
}

fn fig2(run: &LanlRun<'_>) {
    println!("\n== Figure 2 — domains per day after each reduction step (first week of March) ==");
    println!("paper shape: All > filter-internal > filter-servers > new > rare (log scale)");
    let rows: Vec<Vec<String>> = run
        .figure2(4, 10)
        .iter()
        .map(|r| {
            vec![
                format!("03-{:02}", r.march_day),
                r.all.to_string(),
                r.filter_internal.to_string(),
                r.filter_servers.to_string(),
                r.new_destinations.to_string(),
                r.rare_destinations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["day", "All", "filter internal", "filter servers", "New", "Rare"], &rows)
    );
}

fn table2(run: &LanlRun<'_>) {
    println!("\n== Table II — automated (host, domain) pairs vs (W, J_T) ==");
    println!(
        "paper: W=10s/J_T=0.06 captures all 33 malicious pairs; larger J_T admits more legit pairs"
    );
    let rows: Vec<Vec<String>> = run
        .table2(&table2_grid())
        .iter()
        .map(|r| {
            vec![
                format!("{}s", r.bin_width),
                format!("{:.3}", r.jt),
                r.malicious_pairs_training.to_string(),
                r.malicious_pairs_testing.to_string(),
                r.all_pairs_testing.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "W",
                "J_T",
                "malicious pairs (train)",
                "malicious pairs (test)",
                "all pairs (test days)"
            ],
            &rows
        )
    );
}

fn fig3(run: &LanlRun<'_>) {
    println!("\n== Figure 3 — CDFs of first-visit gaps (training campaigns) ==");
    println!("paper: 56% of malicious-malicious gaps < 160 s vs 3.8% of malicious-legitimate");
    let data = run.figure3();
    let mm160 = earlybird_eval::lanl::Fig3Data::fraction_below(&data.malicious_malicious, 160.0);
    let ml160 = earlybird_eval::lanl::Fig3Data::fraction_below(&data.malicious_legitimate, 160.0);
    println!(
        "measured: {:.1}% of {} malicious-malicious gaps < 160 s; {:.1}% of {} malicious-legitimate",
        mm160 * 100.0,
        data.malicious_malicious.len(),
        ml160 * 100.0,
        data.malicious_legitimate.len()
    );
    let rows: Vec<Vec<String>> = cdf_points(&data.malicious_malicious, 8)
        .into_iter()
        .zip(cdf_points(&data.malicious_legitimate, 8))
        .map(|((mv, mf), (lv, lf))| {
            vec![format!("{mv:.0}s -> {mf:.2}"), format!("{lv:.0}s -> {lf:.2}")]
        })
        .collect();
    println!("{}", render_table(&["malicious-malicious CDF", "malicious-legitimate CDF"], &rows));
}

fn table3(run: &LanlRun<'_>) {
    println!("\n== Table III — LANL challenge results ==");
    println!("paper: total 59 TP / 1 FP / 4 FN; TDR 98.33%, FDR 1.67%, FNR 6.35%");
    let (table, _) = run.table3();
    let mut rows = Vec::new();
    for (case, train, test) in &table.rows {
        rows.push(vec![
            format!("Case {case}"),
            train.true_positives.to_string(),
            test.true_positives.to_string(),
            train.false_positives.to_string(),
            test.false_positives.to_string(),
            train.false_negatives.to_string(),
            test.false_negatives.to_string(),
        ]);
    }
    rows.push(vec![
        "Total".into(),
        table.training_total.true_positives.to_string(),
        table.testing_total.true_positives.to_string(),
        table.training_total.false_positives.to_string(),
        table.testing_total.false_positives.to_string(),
        table.training_total.false_negatives.to_string(),
        table.testing_total.false_negatives.to_string(),
    ]);
    println!(
        "{}",
        render_table(
            &["", "TP train", "TP test", "FP train", "FP test", "FN train", "FN test"],
            &rows
        )
    );
    let r = table.overall_rates();
    println!(
        "measured: TDR {} FDR {} FNR {}",
        Rates::pct(r.tdr),
        Rates::pct(r.fdr),
        Rates::pct(r.fnr)
    );
}

fn fig4(run: &LanlRun<'_>) {
    println!("\n== Figure 4 — belief propagation trace on the 3/19 campaign ==");
    println!("paper: hint host -> C&C at 10-min beacon -> 3 similarity-labeled domains -> stop");
    let Some(result) = run.figure4(19) else {
        println!("(no case-3 campaign on 3/19 in this seed)");
        return;
    };
    for trace in &result.outcome.iterations {
        if trace.labeled.is_empty() {
            println!(
                "iteration {}: no domain above threshold (best similarity {:?}) -> stop",
                trace.iteration, trace.best_similarity
            );
        }
        for d in &trace.labeled {
            println!(
                "iteration {}: +domain (score {:.2}, via {:?}); hosts discovered: {}",
                trace.iteration,
                d.score,
                d.reason,
                trace.new_hosts.len()
            );
        }
    }
    println!(
        "result: {} TP, {} FP, {} FN; community of {} hosts",
        result.true_positives,
        result.false_positives,
        result.false_negatives,
        result.outcome.compromised_hosts.len()
    );
}

fn regression(harness: &AcHarness<'_>) {
    println!("\n== Regression models (§VI-A) ==");
    println!("paper: DomAge negatively correlated; RareUA & DomAge most relevant; AutoHosts and IP16 insignificant");
    let training = harness.training();
    println!("C&C model (R² = {:.3}, n = {}):", training.cc_r_squared, training.cc_samples);
    for (name, w, t, sig) in &training.cc_summary {
        println!("  {name:<12} weight {w:+.3}  t {t:+.2}  significant: {sig}");
    }
    println!(
        "similarity model (R² = {:.3}, n = {}):",
        training.sim_r_squared, training.sim_samples
    );
    for (name, w, t, sig) in &training.sim_summary {
        println!("  {name:<12} weight {w:+.3}  t {t:+.2}  significant: {sig}");
    }
}

fn fig5(harness: &AcHarness<'_>) {
    println!("\n== Figure 5 — score CDFs of reported vs legitimate automated domains ==");
    println!("paper: reported domains score higher; threshold 0.4 -> 57.18% TDR / 10.59% FPR on training");
    let fig = harness.figure5();
    let frac_above = |v: &[f64], t: f64| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().filter(|&&x| x >= t).count() as f64 / v.len() as f64
        }
    };
    println!(
        "measured at 0.4: {:.1}% of {} reported above; {:.1}% of {} legitimate above",
        frac_above(&fig.reported, 0.4) * 100.0,
        fig.reported.len(),
        frac_above(&fig.legitimate, 0.4) * 100.0,
        fig.legitimate.len()
    );
    let rows: Vec<Vec<String>> = cdf_points(&fig.reported, 8)
        .into_iter()
        .zip(cdf_points(&fig.legitimate, 8))
        .map(|((rv, rf), (lv, lf))| {
            vec![format!("{rv:+.2} -> {rf:.2}"), format!("{lv:+.2} -> {lf:.2}")]
        })
        .collect();
    println!("{}", render_table(&["reported CDF", "legitimate CDF"], &rows));
}

fn fig6(title: &str, reference: &str, rows: &[Fig6Row]) {
    println!("\n== {title} ==");
    println!("{reference}");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.threshold),
                r.total().to_string(),
                r.known.to_string(),
                r.new_malicious.to_string(),
                r.suspicious.to_string(),
                r.legitimate.to_string(),
                format!("{:.1}%", r.tdr() * 100.0),
                format!("{:.1}%", r.ndr() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["thresh", "total", "VT+SOC", "new-mal", "susp", "legit", "TDR", "NDR"],
            &table
        )
    );
}

fn case_study(harness: &AcHarness<'_>, hints: bool) {
    let (study, title, reference) = if hints {
        (
            harness.case_study_hints(10, 0.4),
            "Figure 8 — SOC-hints community (Feb 10)",
            "paper: IOC seed -> .org malware cluster + new hex-DGA discoveries across 7 hosts",
        )
    } else {
        (
            harness.case_study_nohint(13, 0.4, 0.33),
            "Figure 7 — no-hint community (Feb 13)",
            "paper: beaconing C&C + two delivery-stage domains across 5 hosts",
        )
    };
    println!("\n== {title} ==");
    println!("{reference}");
    let Some(study) = study else {
        println!("(day not present)");
        return;
    };
    println!("community: {} domains across {} hosts", study.domains.len(), study.host_count);
    for (name, reason, score, category) in &study.domains {
        println!("  {score:+.2}  {name:<40} {category}  via {reason:?}");
    }
    println!("\nDOT graph:\n{}", study.dot);
}
