//! Wall-time spans over latency histograms, plus the slow-op ring buffer.

use crate::registry::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Default slow-op threshold: one second.
const DEFAULT_SLOW_THRESHOLD_MICROS: u64 = 1_000_000;

/// A structured record of one operation that ran past the slow-op
/// threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowOp {
    /// Which operation: the metric name plus its labels, e.g.
    /// `stage_micros{stage=reduce,tenant=acme}`.
    pub op: String,
    /// How long it took, in microseconds.
    pub micros: u64,
    /// The threshold that was in force when the event was recorded.
    pub threshold_micros: u64,
}

/// The bounded slow-op event buffer shared by every span of a registry.
#[derive(Debug)]
pub(crate) struct SlowOps {
    threshold_micros: AtomicU64,
    cap: usize,
    events: Mutex<VecDeque<SlowOp>>,
}

impl SlowOps {
    pub(crate) fn new(cap: usize) -> Self {
        SlowOps {
            threshold_micros: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_MICROS),
            cap,
            events: Mutex::new(VecDeque::new()),
        }
    }

    pub(crate) fn set_threshold(&self, micros: u64) {
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    pub(crate) fn threshold(&self) -> u64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, op: &Arc<str>, micros: u64, threshold_micros: u64) {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() == self.cap {
            events.pop_front();
        }
        events.push_back(SlowOp { op: op.to_string(), micros, threshold_micros });
    }

    pub(crate) fn take(&self) -> Vec<SlowOp> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect()
    }
}

/// A reusable timer over one latency histogram. Cache it next to the hot
/// path; each [`StageTimer::start`] yields a [`Span`] that observes its
/// elapsed wall time on drop.
#[derive(Clone, Debug)]
pub struct StageTimer {
    enabled: bool,
    hist: Histogram,
    op: Arc<str>,
    slow: Arc<SlowOps>,
}

impl StageTimer {
    pub(crate) fn new(enabled: bool, hist: Histogram, op: Arc<str>, slow: Arc<SlowOps>) -> Self {
        StageTimer { enabled, hist, op, slow }
    }

    /// Starts timing one operation. On a disabled registry the span skips
    /// the clock read entirely.
    pub fn start(&self) -> Span {
        Span { timer: self.clone(), start: self.enabled.then(Instant::now) }
    }

    /// Records an externally measured duration (same histogram + slow-op
    /// path as a [`Span`], without the clock).
    pub fn observe_micros(&self, micros: u64) {
        self.hist.observe(micros);
        let threshold = self.slow.threshold();
        if micros >= threshold {
            self.slow.record(&self.op, micros, threshold);
        }
    }
}

/// An in-flight timed operation; records its wall time when dropped.
/// Create via [`StageTimer::start`] or `MetricsRegistry::span`.
#[derive(Debug)]
pub struct Span {
    timer: StageTimer,
    start: Option<Instant>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it, but reads better at
    /// call sites that want an explicit end).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.timer.observe_micros(micros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn slow_ops_ring_is_bounded_and_ordered() {
        let ops = SlowOps::new(3);
        let tag: Arc<str> = Arc::from("t");
        for i in 0..5u64 {
            ops.record(&tag, i, 0);
        }
        let got = ops.take();
        assert_eq!(got.iter().map(|s| s.micros).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn observe_micros_below_threshold_is_not_slow() {
        let reg = MetricsRegistry::new();
        reg.set_slow_op_threshold_micros(100);
        let timer = reg.stage_timer("s", &[]);
        timer.observe_micros(99);
        timer.observe_micros(100);
        let slow = reg.take_slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].micros, 100);
        assert_eq!(slow[0].threshold_micros, 100);
    }

    #[test]
    fn finish_records_exactly_once() {
        let reg = MetricsRegistry::new();
        let timer = reg.stage_timer("once", &[]);
        timer.start().finish();
        let snap = reg.snapshot();
        assert_eq!(snap.histogram_totals("stage_micros", &[("stage", "once")]).count, 1);
    }
}
