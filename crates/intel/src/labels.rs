//! Ground-truth classes and the paper's detection-outcome categories.
//!
//! Generators record the *true* class of every domain they emit
//! ([`TrueClass`]); the evaluation harness combines true classes with the
//! [`crate::VirusTotalOracle`] / [`crate::IocFeed`] visibility to bucket each
//! detection into the categories of Fig. 6 ([`DetectionCategory`]):
//! "VirusTotal and SOC", "New malicious", "Suspicious", "Legitimate".

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of an injected attack campaign.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CampaignId(pub u32);

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign-{}", self.0)
    }
}

/// The true class of a domain, known to the generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TrueClass {
    /// Part of an injected attack campaign.
    Malicious(CampaignId),
    /// Questionable but not part of a campaign (parked, unresolvable,
    /// policy-violating) — the paper's "suspicious" validation outcome.
    Suspicious,
    /// Benign.
    Benign,
}

impl TrueClass {
    /// Whether this class counts as a true positive when detected (the
    /// paper counts both malicious and suspicious toward TDR, §VI-B).
    pub fn is_true_positive(self) -> bool {
        !matches!(self, TrueClass::Benign)
    }
}

/// The validation categories of Fig. 6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DetectionCategory {
    /// Malicious and already known to VirusTotal or the SOC at validation.
    KnownMalicious,
    /// Malicious but unknown to both — the paper's "new malicious"
    /// discoveries.
    NewMalicious,
    /// Suspicious (manual-investigation outcome).
    Suspicious,
    /// Legitimate (false detection).
    Legitimate,
}

impl fmt::Display for DetectionCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetectionCategory::KnownMalicious => "VirusTotal and SOC",
            DetectionCategory::NewMalicious => "New malicious",
            DetectionCategory::Suspicious => "Suspicious",
            DetectionCategory::Legitimate => "Legitimate",
        };
        f.write_str(s)
    }
}

/// Per-domain ground truth, keyed by folded domain name.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    classes: HashMap<String, TrueClass>,
}

impl GroundTruth {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the true class of `domain`. Malicious labels take precedence
    /// over earlier non-malicious ones on duplicate insertion.
    pub fn set(&mut self, domain: &str, class: TrueClass) {
        self.classes
            .entry(domain.to_owned())
            .and_modify(|c| {
                if !c.is_true_positive() || matches!(class, TrueClass::Malicious(_)) {
                    *c = class;
                }
            })
            .or_insert(class);
    }

    /// The class of `domain`, defaulting to benign for unknown domains.
    pub fn class_of(&self, domain: &str) -> TrueClass {
        self.classes.get(domain).copied().unwrap_or(TrueClass::Benign)
    }

    /// All domains recorded malicious for `campaign`.
    pub fn campaign_domains(&self, campaign: CampaignId) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .classes
            .iter()
            .filter(|(_, c)| matches!(c, TrueClass::Malicious(id) if *id == campaign))
            .map(|(name, _)| name.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// All malicious domains across campaigns.
    pub fn all_malicious(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .classes
            .iter()
            .filter(|(_, c)| matches!(c, TrueClass::Malicious(_)))
            .map(|(name, _)| name.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of labeled domains.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether no domains are labeled.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_defaults_to_benign() {
        let gt = GroundTruth::new();
        assert_eq!(gt.class_of("whatever.com"), TrueClass::Benign);
    }

    #[test]
    fn malicious_label_wins_over_benign() {
        let mut gt = GroundTruth::new();
        gt.set("x.org", TrueClass::Benign);
        gt.set("x.org", TrueClass::Malicious(CampaignId(1)));
        gt.set("x.org", TrueClass::Benign); // must not downgrade
        assert_eq!(gt.class_of("x.org"), TrueClass::Malicious(CampaignId(1)));
    }

    #[test]
    fn campaign_domains_filtered_and_sorted() {
        let mut gt = GroundTruth::new();
        gt.set("b.c3", TrueClass::Malicious(CampaignId(3)));
        gt.set("a.c3", TrueClass::Malicious(CampaignId(3)));
        gt.set("z.c3", TrueClass::Malicious(CampaignId(4)));
        gt.set("s.c3", TrueClass::Suspicious);
        assert_eq!(gt.campaign_domains(CampaignId(3)), vec!["a.c3", "b.c3"]);
        assert_eq!(gt.all_malicious().len(), 3);
    }

    #[test]
    fn suspicious_counts_as_true_positive() {
        assert!(TrueClass::Suspicious.is_true_positive());
        assert!(TrueClass::Malicious(CampaignId(0)).is_true_positive());
        assert!(!TrueClass::Benign.is_true_positive());
    }

    #[test]
    fn category_display_matches_figure6_legend() {
        assert_eq!(DetectionCategory::KnownMalicious.to_string(), "VirusTotal and SOC");
        assert_eq!(DetectionCategory::NewMalicious.to_string(), "New malicious");
    }
}
