//! Throughput benchmarks for the data-reduction pipeline (the Fig. 2
//! machinery) driven through the Engine facade: normalization, reduction,
//! rare extraction, and indexing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use earlybird_core::PipelineConfig;
use earlybird_engine::{DayBatch, EngineBuilder};
use earlybird_logmodel::Day;
use std::sync::Arc;

fn bench_reduction(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let day = challenge.dataset.day(Day::new(32)).unwrap().clone();

    c.bench_function("dns_day_reduce_and_index", |b| {
        b.iter_batched(
            || {
                let mut engine = EngineBuilder::lanl()
                    .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
                    .expect("valid config");
                // Warm the history with one bootstrap day so the rare sieve
                // does non-trivial work.
                engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));
                engine
            },
            |mut engine| engine.ingest_day(DayBatch::Dns(&day)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_proxy_day(c: &mut Criterion) {
    let world = earlybird_bench::ac_world();
    let day = world.dataset.day(Day::new(40)).unwrap().clone();

    c.bench_function("proxy_day_normalize_reduce_index", |b| {
        b.iter_batched(
            || {
                let mut engine = EngineBuilder::enterprise()
                    .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
                    .expect("valid config");
                engine.ingest_day(DayBatch::Proxy {
                    day: &world.dataset.days[0],
                    dhcp: &world.dataset.dhcp,
                });
                engine
            },
            |mut engine| {
                engine.ingest_day(DayBatch::Proxy { day: &day, dhcp: &world.dataset.dhcp })
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_fold_level(c: &mut Criterion) {
    // Ablation: folding depth changes how many distinct entities the
    // history tracks.
    let challenge = earlybird_bench::lanl_world();
    let day = challenge.dataset.day(Day::new(30)).unwrap().clone();
    let mut group = c.benchmark_group("fold_level_ablation");
    for level in [2usize, 3] {
        group.bench_function(format!("fold_to_{level}"), |b| {
            b.iter_batched(
                || {
                    EngineBuilder::lanl()
                        .pipeline(PipelineConfig { fold_level: level, ..PipelineConfig::lanl() })
                        .build(
                            Arc::clone(&challenge.dataset.domains),
                            challenge.dataset.meta.clone(),
                        )
                        .expect("valid config")
                },
                |mut engine| engine.ingest_day(DayBatch::Dns(&day)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reduction, bench_proxy_day, bench_fold_level
}
criterion_main!(benches);
