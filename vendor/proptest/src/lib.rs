//! Vendored, offline-buildable stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range / tuple / vec / option
//! strategies, `num::*::ANY`, `bool::ANY`, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs reachable from the assertion message) and a fixed
//! deterministic seed sequence, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinator types.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.new_value(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E)
    );

    /// Strategy for "any value of `T`" (see `num::*::ANY`, `bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub core::marker::PhantomData<T>);

    macro_rules! any_strategy {
        ($($t:ty => $body:expr),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    let f: fn(&mut StdRng) -> $t = $body;
                    f(rng)
                }
            }
        )*};
    }
    any_strategy!(
        u8 => |rng| rng.gen(),
        u16 => |rng| rng.gen(),
        u32 => |rng| rng.gen(),
        u64 => |rng| rng.gen(),
        usize => |rng| rng.gen(),
        i32 => |rng| rng.gen(),
        i64 => |rng| rng.gen(),
        bool => |rng| rng.gen(),
        f64 => |rng| rng.gen()
    );

    /// A `Vec` strategy with a size range (see [`crate::collection::vec`]).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) min: usize,
        pub(crate) max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len =
                if self.min >= self.max { self.min } else { rng.gen_range(self.min..self.max) };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// An `Option` strategy (see [`crate::option::of`]).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        pub(crate) inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.new_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, VecStrategy};

    /// Size specification for [`vec()`]: an exact `usize` or a
    /// `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { min: r.start, max: r.end }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// A strategy producing `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy { element, min: size.min, max: size.max }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `Some(inner)` or `None` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod num {
    //! Numeric `ANY` strategies.

    macro_rules! any_mod {
        ($($m:ident: $t:ty),*) => {$(
            pub mod $m {
                //! Strategies for this primitive type.
                /// Any value of the type.
                pub const ANY: crate::strategy::Any<$t> =
                    crate::strategy::Any(core::marker::PhantomData);
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64, f64: f64);
}

pub mod bool {
    //! Boolean strategies.

    /// Any boolean.
    pub const ANY: crate::strategy::Any<::core::primitive::bool> =
        crate::strategy::Any(core::marker::PhantomData);
}

pub mod test_runner {
    //! Runner configuration.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

#[doc(hidden)]
pub mod __private {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($parm:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = <$crate::__private::StdRng as $crate::__private::SeedableRng>::seed_from_u64(
                        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(__case) + 1),
                    );
                    $(
                        let $parm = $crate::strategy::Strategy::new_value(&($strategy), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, bool)> {
        (0u64..100, crate::bool::ANY)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 5u32..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn composed(p in pair(), o in crate::option::of(crate::num::u32::ANY)) {
            prop_assert!(p.0 < 100);
            let _ = o;
        }
    }
}
