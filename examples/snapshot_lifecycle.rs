//! The snapshot lifecycle manager: a daily cycle against a manifest-driven
//! [`StoreDir`] with automatic tiered compaction and retention GC, driven
//! through the [`Persistence`] facade.
//!
//! The shape of a long-running deployment:
//!
//! 1. `StoreDir::open_or_create` owns a snapshot directory (a small
//!    CRC-protected `MANIFEST` records the `full + N segments` chain) and
//!    `Persistence::new` wraps it with a `SnapshotPolicy`;
//! 2. after each day's `ingest_day`, `Persistence::commit` writes a full
//!    block (first run) or an O(day) segment — and when the configured
//!    `CompactionTrigger` fires, folds the `fold_segments` **oldest**
//!    segments into the full block (replay bounded by the tier, not the
//!    chain length), pruning contact indexes past `retain_days` (their
//!    counters stay: the full block is the source of truth);
//! 3. on restart, `StoreDir::open` validates the manifest, quarantines any
//!    crash residue, and `Persistence::restore` replays the chain in
//!    O(current state) — however long the service has been running — with
//!    bit-identical continuation.
//!
//! The storage medium is pluggable: the same lifecycle runs over a local
//! directory (`StoreDir::open_or_create`), an in-memory store
//! (`MemBackend`), or an S3-style object store with multipart uploads and
//! a conditional manifest swap (`S3LiteBackend`) — the final section
//! drives the identical daily cycle against the S3 simulation.
//!
//! Run with: `cargo run --release --example snapshot_lifecycle`

use earlybird::engine::{
    CollectingSink, CompactionTrigger, DayBatch, EngineBuilder, LifecycleConfig, Persistence,
    RetentionPolicy, S3LiteBackend, SnapshotPolicy, StoreDir,
};
use earlybird::logmodel::Day;
use earlybird::store::BlockKind;
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

fn main() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let dataset = &challenge.dataset;
    let split = dataset.meta.bootstrap_days as usize + 5; // the process "dies" here
    let root = std::env::temp_dir().join("earlybird-example-store");
    let _ = std::fs::remove_dir_all(&root);

    // Fold the two oldest segments whenever the chain exceeds 4 segments
    // (tiered: each pass replays at most full + 2, however long the chain
    // grew); keep the newest 2 days investigable through a compaction
    // (older days keep their counters in the full block, only their
    // contact indexes drop).
    let lifecycle = LifecycleConfig {
        compaction: CompactionTrigger {
            max_segments: Some(4),
            max_segment_bytes: None,
            fold_segments: Some(2),
        },
        retention: RetentionPolicy { retain_days: Some(2) },
    };

    // ---- Reference: one engine that never restarts. --------------------
    let sink = CollectingSink::new();
    let reference_alerts = sink.handle();
    let mut reference = EngineBuilder::lanl()
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&dataset.domains), dataset.meta.clone())
        .expect("valid config");
    for day in &dataset.days {
        reference.ingest_day(DayBatch::Dns(day));
    }

    // ---- Incarnation #1: the daily cycle through the facade. -----------
    {
        let dir = StoreDir::open_or_create(&root, lifecycle).expect("store dir");
        let store = Persistence::new(dir, SnapshotPolicy::default());
        let mut engine = EngineBuilder::lanl()
            .auto_investigate(true)
            .sink(CollectingSink::new())
            .build(Arc::clone(&dataset.domains), dataset.meta.clone())
            .expect("valid config");
        for day in &dataset.days[..split] {
            engine.ingest_day(DayBatch::Dns(day));
            let outcome = store.commit(&engine).expect("freeze").wait().expect("daily persist");
            match outcome.block.kind {
                BlockKind::Full => println!(
                    "day {:>2}: full snapshot, {} bytes",
                    day.day.index(),
                    outcome.block.bytes
                ),
                BlockKind::DaySegment => {
                    // One guard for both reads: `store()` locks the
                    // StoreDir, and a second lock while the first guard's
                    // temporary is still alive would self-deadlock.
                    let dir = store.store();
                    println!(
                        "day {:>2}: segment, {} bytes ({} segments, {} chain bytes)",
                        day.day.index(),
                        outcome.block.bytes,
                        dir.segment_count(),
                        dir.chain_bytes()
                    );
                }
            }
            if let Some(c) = outcome.compaction {
                println!(
                    "        tiered compaction: {} segments folded ({} blocks replayed), \
                     {} -> {} bytes, {} indexes pruned",
                    c.segments_folded,
                    c.segments_replayed,
                    c.bytes_before,
                    c.bytes_after,
                    c.days_pruned
                );
            }
        }
        // Engine dropped here: the "crash". Only the directory survives.
    }

    // ---- Incarnation #2: cold restart from the managed directory. ------
    let dir = StoreDir::open(&root, lifecycle).expect("reopen store dir");
    println!(
        "reopened: generation {}, {} chain files, {} quarantined",
        dir.generation(),
        dir.entries().len(),
        dir.quarantined().len()
    );
    assert!(dir.entries().len() <= 6, "compaction keeps the chain bounded regardless of uptime");
    let sink = CollectingSink::new();
    let restarted_alerts = sink.handle();
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let mut engine = store
        .restore(EngineBuilder::lanl().auto_investigate(true).sink(sink))
        .expect("chain restores");
    println!(
        "restored: {} days of counters, {} investigable indexes, {} profiled domains",
        engine.reports().count(),
        engine.days().count(),
        engine.history().len()
    );

    // At-least-once replay of the day in flight at the crash, then finish.
    let replay = engine.ingest_day(DayBatch::Dns(&dataset.days[split - 1]));
    assert!(replay.duplicate, "covered day absorbed as a replay");
    for day in &dataset.days[split..] {
        engine.ingest_day(DayBatch::Dns(day));
    }

    // ---- The restart (and every compaction) was invisible. --------------
    let split_day = Day::new(split as u32);
    let expected: Vec<_> =
        reference_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
    let actual = restarted_alerts.snapshot();
    assert_eq!(actual, expected, "post-restart alert stream must be bit-identical");
    println!(
        "post-restart alerts: {} (sequences {:?}..{:?}) — bit-identical to the uninterrupted run",
        actual.len(),
        actual.first().map(|a| a.sequence),
        actual.last().map(|a| a.sequence),
    );

    drop(store);
    let _ = std::fs::remove_dir_all(&root);
    println!("snapshot lifecycle OK: tiered compaction + retention GC verified");

    // ---- Backends: the identical cycle over an S3-style object store. ---
    // `S3LiteBackend` keeps the protocol shape of a real bucket: blocks
    // upload as multipart parts and become visible only at completion,
    // and the MANIFEST swap is a conditional put on the generation — a
    // concurrent writer loses with a typed ManifestConflict instead of
    // clobbering the chain. A real S3/GCS client drops into this adapter.
    let service = S3LiteBackend::new();
    {
        let dir = StoreDir::create_with(service.clone(), lifecycle).expect("create object store");
        let store = Persistence::new(dir, SnapshotPolicy::default());
        let mut engine = EngineBuilder::lanl()
            .auto_investigate(true)
            .sink(CollectingSink::new())
            .build(Arc::clone(&dataset.domains), dataset.meta.clone())
            .expect("valid config");
        for day in &dataset.days[..split] {
            engine.ingest_day(DayBatch::Dns(day));
            store
                .commit(&engine)
                .expect("freeze")
                .wait()
                .expect("daily persist to the object store");
        }
        // The "process" dies here; only the service handle survives.
    }
    let dir = StoreDir::open_with(service.clone(), lifecycle).expect("reopen object store");
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let engine = store
        .restore(EngineBuilder::lanl().auto_investigate(true).sink(CollectingSink::new()))
        .expect("object-store chain restores");
    println!(
        "s3lite: generation {}, {} chain objects, {} staged uploads, {} days restored",
        store.generation(),
        store.store().entries().len(),
        service.staged_uploads(),
        engine.reports().count(),
    );
    assert_eq!(engine.reports().count(), split, "same chain, different medium");
    println!("storage backends OK: localfs and s3lite drive the same lifecycle");
}
