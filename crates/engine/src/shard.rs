//! Horizontal sharding: partition-by-host parallel reduction with a
//! deterministic merge.
//!
//! A single [`Engine`] already parallelizes *within* each pushed span, but
//! the absorb step — feeding every reduced chunk into the one
//! [`earlybird_core::DayAccum`] — is sequential, and on wide days it
//! dominates. [`ShardedEngine`] removes that ceiling by partitioning the
//! day's traffic across N independent *shards*, each with its own
//! reduction state, and only reconciling at day seal:
//!
//! 1. **Partition.** Every record is routed by a stable multiplicative
//!    hash of its internal host id ([`shard_of`]). The host↔domain contact
//!    graph of the paper (§IV-B) is keyed by `(host, domain)`, so a
//!    host-pure partition makes the per-shard edge maps disjoint by
//!    construction.
//! 2. **Reduce in parallel.** Each shard reduces its records against its
//!    own fold table, internal-name filter, [`DayReducer`] and
//!    [`DayIndexBuilder`] — no shared mutable state, no locks on the hot
//!    path.
//! 3. **Merge deterministically.** At [`ShardedDayIngest::finish`] the
//!    shard partials are remapped onto the canonical folded interner and
//!    unioned in shard order; the rare-domain sieve, C&C scoring and
//!    belief propagation then run **once** over the merged view, exactly
//!    as in the single-engine path.
//!
//! # The determinism contract
//!
//! For any shard count N ≥ 1 — including N = 1 — and any chunking of the
//! pushed spans, a `ShardedEngine` produces **byte-identical** results to
//! a plain [`Engine`] fed the same records: the same [`DayReport`]s, the
//! same alerts in the same order, and the same checkpoint bytes.
//!
//! The subtle part is folded-symbol numbering. Downstream tie-breaks
//! (candidate ordering, snapshot bytes) depend on the order in which
//! folded domain names were first interned, so the canonical fold
//! warm-up ([`DailyPipeline::warm_dns_folds`]) runs sequentially over
//! every span in arrival order *before* the shards touch it — the same
//! rule the single-engine parallel path follows. Shards then fold against
//! a **fork** of the canonical folded interner taken at day open: names
//! already canonical keep their numbering, while names first seen mid-day
//! mint shard-local tail symbols. At merge, each tail symbol is resolved
//! by name back into the canonical table (the warm-up guarantees a hit)
//! and every shard-local symbol in the partial is rewritten before the
//! union. Because histories only update at day seal, a shard-local
//! symbol's novelty verdict ([`earlybird_pipeline::DomainHistory`]) always
//! matches its canonical counterpart's.
//!
//! [`DailyPipeline`]: earlybird_core::DailyPipeline
//! [`DailyPipeline::warm_dns_folds`]: earlybird_core::DailyPipeline::warm_dns_folds

use crate::builder::EngineError;
use crate::core_loop::Engine;
use crate::ingest::{map_shards, parse_shards, shard_spans, IngestSource};
use crate::report::DayReport;
use crate::DayBatch;
use earlybird_core::{DayAccum, ShardDayPartial};
use earlybird_logmodel::{
    parse_dns_span, parse_proxy_span, payload_line, Day, DhcpLog, DnsQuery, DomainInterner,
    DomainSym, HostId, ParseLogError, ProxyRecord, UaSym,
};
use earlybird_obs::StageTimer;
use earlybird_pipeline::{
    reduce_dns_chunk, reduce_proxy_chunk, ChunkReduction, DayIndexBuilder, DayReducer,
    DomainHistory, FoldTable, InternalFilter, NormalizationCounts, ReductionConfig, UaHistory,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Routes an internal host to its shard: a Knuth multiplicative hash of
/// the host id, stable across runs, platforms and shard layouts.
///
/// Host ids are assigned densely in first-seen order, so a plain modulus
/// would put consecutive hosts on consecutive shards — fine for balance,
/// but any future range-correlated workload (hosts enumerated by subnet)
/// would alias. The golden-ratio multiplier scrambles the low bits first.
#[inline]
pub fn shard_of(host: HostId, shards: usize) -> usize {
    (host.index().wrapping_mul(0x9E37_79B1) as usize) % shards
}

/// Per-shard metric handles: one `engine_stage_micros{stage="shard_reduce",
/// shard=i}` timer per shard plus the merge-time histogram
/// `engine_stage_micros{stage="shard_merge"}`.
#[derive(Debug)]
struct ShardMetrics {
    reduce: Vec<StageTimer>,
    merge: StageTimer,
}

impl ShardMetrics {
    fn new(engine: &Engine, shards: usize) -> Self {
        let registry = engine.metrics.registry();
        let timer = |labels: &[(&str, &str)]| {
            registry.timer(
                "engine_stage_micros",
                "Wall time per engine pipeline stage in microseconds",
                labels,
            )
        };
        let reduce = (0..shards)
            .map(|i| {
                let idx = i.to_string();
                timer(&[("stage", "shard_reduce"), ("shard", idx.as_str())])
            })
            .collect();
        ShardMetrics { reduce, merge: timer(&[("stage", "shard_merge")]) }
    }
}

/// N host-partitioned reduction lanes over one [`Engine`], merged
/// deterministically at day seal. The module-level docs in
/// `crates/engine/src/shard.rs` spell out the execution model and the
/// determinism contract.
///
/// Everything that is not the day's reduction — detection tail,
/// checkpointing, alert sinks, replay guard, retained products — still
/// lives in the inner engine, which stays reachable through
/// [`ShardedEngine::engine`] / [`ShardedEngine::engine_mut`].
#[derive(Debug)]
pub struct ShardedEngine {
    engine: Engine,
    shards: usize,
    metrics: ShardMetrics,
}

impl ShardedEngine {
    /// Wraps `engine` with `shards` parallel reduction lanes.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(engine: Engine, shards: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        let metrics = ShardMetrics::new(&engine, shards);
        ShardedEngine { engine, shards, metrics }
    }

    /// The number of parallel reduction lanes.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The wrapped engine (checkpointing, queries, reports).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable access to the wrapped engine — checkpoint it, attach sinks,
    /// run investigations. Do not hold this across an open
    /// [`ShardedDayIngest`]; the borrow checker enforces as much.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Unwraps back into the plain engine.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Opens a streaming sharded ingest for `day` — the sharded counterpart
    /// of [`Engine::begin_day`], with the same replay semantics: a day that
    /// was already ingested accepts pushes as no-ops.
    pub fn begin_day<'a>(
        &mut self,
        day: Day,
        source: IngestSource<'a>,
    ) -> ShardedDayIngest<'_, 'a> {
        let started = Instant::now();
        let (accum, workers, base_len) = if self.engine.reports.contains_key(&day) {
            (None, Vec::new(), 0)
        } else {
            let bootstrap = day.index() < self.engine.bootstrap_days();
            let accum = match source {
                IngestSource::Dns => {
                    self.engine.pipeline.begin_dns_day(day, &self.engine.meta, bootstrap)
                }
                IngestSource::Proxy { .. } => {
                    self.engine.pipeline.begin_proxy_day(day, &self.engine.meta, bootstrap)
                }
            };
            // The canonical/local split point: every folded symbol below
            // this is shared by construction (the fork copies the table);
            // everything at or above it is day-local and gets remapped at
            // merge. Captured before any of the day's folds.
            let base_len = self.engine.pipeline.folded_interner().len();
            let workers: Vec<ShardWorker> =
                (0..self.shards).map(|_| ShardWorker::new(&self.engine, day, bootstrap)).collect();
            (Some(accum), workers, base_len)
        };
        let state = ShardedDayState {
            day,
            dns: source.is_dns(),
            base_len,
            accum,
            workers,
            parse_errors: 0,
            started,
        };
        ShardedDayIngest { sharded: self, source, state }
    }

    /// Ingests one whole-day batch through the sharded path; equivalent to
    /// [`Engine::ingest_day`] and byte-identical in its results.
    ///
    /// # Panics
    ///
    /// Panics if a C&C scoring worker dies; use
    /// [`ShardedEngine::try_ingest_day`] for the typed-error path.
    pub fn ingest_day(&mut self, batch: DayBatch<'_>) -> DayReport {
        self.try_ingest_day(batch).unwrap_or_else(|e| panic!("daily cycle failed: {e}"))
    }

    /// [`ShardedEngine::ingest_day`] with runtime faults surfaced as typed
    /// [`EngineError`]s instead of panics.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] when a C&C scoring worker dies; same
    /// registration semantics as [`Engine::try_ingest_day`].
    pub fn try_ingest_day(&mut self, batch: DayBatch<'_>) -> Result<DayReport, EngineError> {
        match batch {
            DayBatch::Dns(d) => {
                let mut ingest = self.begin_day(d.day, IngestSource::Dns);
                ingest.push_dns_records(&d.queries);
                ingest.try_finish()
            }
            DayBatch::Proxy { day, dhcp } => {
                let mut ingest = self.begin_day(day.day, IngestSource::Proxy { dhcp });
                ingest.push_proxy_records(&day.records);
                ingest.try_finish()
            }
        }
    }
}

/// One shard's private reduction lane: a forked fold table, its own
/// filter, reducer and index builder, and the partition buffers records
/// are routed into between runs.
#[derive(Debug)]
struct ShardWorker {
    fold: FoldTable,
    filter: InternalFilter,
    reducer: DayReducer,
    builder: Option<DayIndexBuilder>,
    day_domains: HashSet<DomainSym>,
    ua_pairs: HashSet<(UaSym, HostId)>,
    dns_buf: Vec<DnsQuery>,
    proxy_buf: Vec<ProxyRecord>,
}

impl ShardWorker {
    fn new(engine: &Engine, day: Day, bootstrap: bool) -> Self {
        let pipeline = &engine.pipeline;
        let cfg = pipeline.config();
        // Fork, not share: the local folded interner keeps canonical
        // numbering for every name known at day open and diverges privately
        // for names first seen mid-day. `into_partial` reconciles the tail.
        let local = Arc::new(pipeline.folded_interner().fork());
        ShardWorker {
            fold: FoldTable::from_interners(
                Arc::clone(pipeline.raw_interner()),
                local,
                cfg.fold_level,
            ),
            filter: InternalFilter::new(ReductionConfig::from_meta(&engine.meta)),
            reducer: DayReducer::new(),
            builder: (!bootstrap).then(|| DayIndexBuilder::new(day, cfg.unpopular_threshold)),
            day_domains: HashSet::new(),
            ua_pairs: HashSet::new(),
            dns_buf: Vec::new(),
            proxy_buf: Vec::new(),
        }
    }

    /// The shard-local mirror of `DailyPipeline::absorb_chunk`.
    fn absorb(&mut self, chunk: ChunkReduction, history: &DomainHistory, ua_history: &UaHistory) {
        self.reducer.push_chunk(&chunk);
        for c in &chunk.contacts {
            if let Some(ua) = c.http.and_then(|h| h.ua) {
                self.ua_pairs.insert((ua, c.host));
            }
        }
        match &mut self.builder {
            Some(builder) => builder.push_contacts(&chunk.contacts, history, Some(ua_history)),
            None => self.day_domains.extend(chunk.contacts.iter().map(|c| c.domain)),
        }
    }

    /// Rewrites every shard-local folded symbol onto the canonical table
    /// and surrenders the shard's accumulation for the merge.
    fn into_partial(mut self, base_len: usize, canonical: &DomainInterner) -> ShardDayPartial {
        let local = self.fold.folded_interner();
        let local_len = local.len();
        if local_len > base_len {
            // Shard-local tail symbols are dense in [base_len, local_len):
            // resolve each by name into the canonical table. The sequential
            // warm-up folded every record the shard saw, so lookups cannot
            // miss.
            let tail: Vec<DomainSym> = (base_len..local_len)
                .map(|i| {
                    let name = local.resolve(DomainSym::from_raw(i as u32));
                    canonical
                        .get(&name)
                        .expect("canonical fold warm-up covers every shard-local name")
                })
                .collect();
            let map = |d: DomainSym| {
                let raw = d.raw() as usize;
                if raw < base_len {
                    d
                } else {
                    tail[raw - base_len]
                }
            };
            self.reducer.remap_domains(map);
            if let Some(builder) = &mut self.builder {
                builder.remap_domains(map);
            }
            self.day_domains = self.day_domains.iter().map(|&d| map(d)).collect();
        }
        ShardDayPartial {
            reducer: self.reducer,
            builder: self.builder,
            day_domains: self.day_domains,
            ua_pairs: self.ua_pairs,
        }
    }
}

/// Push handle for one sharded streaming day; created by
/// [`ShardedEngine::begin_day`]. Same chunking-invariance contract as
/// [`crate::DayIngest`]: any mix of record and line pushes in any span
/// sizes yields identical results.
#[derive(Debug)]
pub struct ShardedDayIngest<'s, 'a> {
    sharded: &'s mut ShardedEngine,
    source: IngestSource<'a>,
    state: ShardedDayState,
}

#[derive(Debug)]
struct ShardedDayState {
    day: Day,
    #[allow(dead_code)]
    dns: bool,
    /// Canonical folded-interner length at day open — the split point
    /// between shared and shard-local symbol ranges.
    base_len: usize,
    /// `None` when the day is a replay (nothing accumulates).
    accum: Option<DayAccum>,
    workers: Vec<ShardWorker>,
    parse_errors: usize,
    started: Instant,
}

impl ShardedDayIngest<'_, '_> {
    /// The day being ingested.
    pub fn day(&self) -> Day {
        self.state.day
    }

    /// Whether this day was already ingested (pushes are no-ops).
    pub fn is_duplicate(&self) -> bool {
        self.state.accum.is_none()
    }

    /// Raw records pushed so far.
    pub fn records_pushed(&self) -> usize {
        self.state.accum.as_ref().map_or(0, DayAccum::records_in)
    }

    /// Parse errors accumulated by [`ShardedDayIngest::push_lines`] so far.
    pub fn parse_errors(&self) -> usize {
        self.state.parse_errors
    }

    /// Pushes a span of DNS queries, partitioning it across the shards.
    ///
    /// # Panics
    ///
    /// Panics if the ingest was opened with a proxy source.
    pub fn push_dns_records(&mut self, records: &[DnsQuery]) {
        assert!(self.source.is_dns(), "DNS records pushed into a proxy-source day");
        let Some(accum) = &mut self.state.accum else { return };
        accum.count_raw_records(records.len());
        let engine = &self.sharded.engine;
        engine.metrics.records.add(records.len() as u64);
        let _reduce_span = engine.metrics.reduce.start();
        reduce_dns_sharded(engine, &self.sharded.metrics, &mut self.state.workers, &[records]);
    }

    /// Pushes a span of raw proxy records: normalization runs on the
    /// engine's worker pool, then the normalized records are partitioned
    /// across the shards.
    ///
    /// # Panics
    ///
    /// Panics if the ingest was opened with the DNS source.
    pub fn push_proxy_records(&mut self, records: &[ProxyRecord]) {
        let IngestSource::Proxy { dhcp } = self.source else {
            panic!("proxy records pushed into a DNS-source day");
        };
        let Some(accum) = &mut self.state.accum else { return };
        accum.count_raw_records(records.len());
        let engine = &self.sharded.engine;
        engine.metrics.records.add(records.len() as u64);
        let _reduce_span = engine.metrics.reduce.start();
        let spans = shard_spans(records, engine.cfg.parallelism, engine.cfg.ingest_chunk_records);
        reduce_proxy_sharded(
            engine,
            &self.sharded.metrics,
            accum,
            &mut self.state.workers,
            &spans,
            dhcp,
        );
    }

    /// Pushes a block of raw log lines — the sharded counterpart of
    /// [`crate::DayIngest::push_lines`], with identical parsing (parallel,
    /// parse-time interning, sequential host-id assignment) and the same
    /// error reporting.
    pub fn push_lines(&mut self, text: &str) -> Vec<(usize, ParseLogError)> {
        if self.state.accum.is_none() {
            return Vec::new();
        }
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter_map(|(i, line)| payload_line(line).map(|l| (i + 1, l)))
            .collect();

        let mut errors: Vec<(usize, ParseLogError)> = Vec::new();
        match self.source {
            IngestSource::Dns => {
                let engine = &self.sharded.engine;
                let spans =
                    shard_spans(&lines, engine.cfg.parallelism, engine.cfg.ingest_chunk_records);
                let mut chunks = engine.scratch.take_dns(spans.len());
                let parse_span = engine.metrics.parse.start();
                {
                    let domains = engine.pipeline.raw_interner();
                    parse_shards(&spans, &mut chunks, |span, chunk| {
                        parse_dns_span(span.iter().copied(), domains, chunk);
                    });
                }
                // Host ids depend on first-seen order: assign sequentially,
                // span by span in arrival order — the partition hash below
                // must see the same ids a single engine would assign.
                for chunk in &mut chunks {
                    self.sharded.engine.line_hosts.assign(&mut chunk.records);
                    errors.append(&mut chunk.errors);
                }
                parse_span.finish();
                let total: usize = chunks.iter().map(|c| c.records.len()).sum();
                let spans: Vec<&[DnsQuery]> = chunks.iter().map(|c| c.records.as_slice()).collect();
                let engine = &self.sharded.engine;
                if let Some(accum) = &mut self.state.accum {
                    accum.count_raw_records(total);
                    engine.metrics.records.add(total as u64);
                    let _reduce_span = engine.metrics.reduce.start();
                    reduce_dns_sharded(
                        engine,
                        &self.sharded.metrics,
                        &mut self.state.workers,
                        &spans,
                    );
                }
                drop(spans);
                engine.scratch.give_dns(chunks);
            }
            IngestSource::Proxy { dhcp } => {
                let engine = &self.sharded.engine;
                let spans =
                    shard_spans(&lines, engine.cfg.parallelism, engine.cfg.ingest_chunk_records);
                let mut chunks = engine.scratch.take_proxy(spans.len());
                let parse_span = engine.metrics.parse.start();
                {
                    let domains = engine.pipeline.raw_interner();
                    let (uas, paths) = (&engine.uas, &engine.paths);
                    parse_shards(&spans, &mut chunks, |span, chunk| {
                        parse_proxy_span(span.iter().copied(), domains, uas, paths, chunk);
                    });
                }
                for chunk in &mut chunks {
                    errors.append(&mut chunk.errors);
                }
                parse_span.finish();
                let total: usize = chunks.iter().map(|c| c.records.len()).sum();
                let spans: Vec<&[ProxyRecord]> =
                    chunks.iter().map(|c| c.records.as_slice()).collect();
                if let Some(accum) = &mut self.state.accum {
                    accum.count_raw_records(total);
                    engine.metrics.records.add(total as u64);
                    let _reduce_span = engine.metrics.reduce.start();
                    reduce_proxy_sharded(
                        engine,
                        &self.sharded.metrics,
                        accum,
                        &mut self.state.workers,
                        &spans,
                        dhcp,
                    );
                }
                drop(spans);
                engine.scratch.give_proxy(chunks);
            }
        }
        errors.sort_by_key(|(lineno, _)| *lineno);
        self.state.parse_errors += errors.len();
        self.sharded.engine.metrics.parse_errors.add(errors.len() as u64);
        errors
    }

    /// Seals the day: merges the shard partials onto the canonical
    /// accumulator in shard order, then runs the unchanged finalize +
    /// detection tail — once, over the merged view.
    ///
    /// # Panics
    ///
    /// Panics if a C&C scoring worker dies; use
    /// [`ShardedDayIngest::try_finish`] for the typed-error path.
    pub fn finish(self) -> DayReport {
        self.try_finish().unwrap_or_else(|e| panic!("daily cycle failed: {e}"))
    }

    /// [`ShardedDayIngest::finish`] with runtime faults surfaced as typed
    /// [`EngineError`]s; same semantics as [`crate::DayIngest::try_finish`].
    pub fn try_finish(self) -> Result<DayReport, EngineError> {
        let ShardedDayIngest { sharded, state, .. } = self;
        let ShardedDayState { day, base_len, accum, workers, parse_errors, started, .. } = state;
        let Some(mut accum) = accum else {
            let mut replay = sharded
                .engine
                .reports
                .get(&day)
                .cloned()
                .expect("duplicate day must have a stored report");
            replay.duplicate = true;
            return Ok(replay);
        };
        let merge_started = Instant::now();
        {
            let canonical = Arc::clone(sharded.engine.pipeline.folded_interner());
            for worker in workers {
                let partial = worker.into_partial(base_len, &canonical);
                sharded.engine.pipeline.absorb_shard_partial(&mut accum, partial);
            }
        }
        sharded.metrics.merge.observe_micros(merge_started.elapsed().as_micros() as u64);
        sharded.engine.seal_streamed_day(day, accum, parse_errors, started)
    }
}

/// Partitions pre-warmed DNS spans across the shards and reduces each
/// shard's slice in parallel.
fn reduce_dns_sharded(
    engine: &Engine,
    metrics: &ShardMetrics,
    workers: &mut [ShardWorker],
    spans: &[&[DnsQuery]],
) {
    // Canonical folded numbering is fixed up front, sequentially in
    // arrival order — the anchor of the determinism contract.
    for span in spans {
        engine.pipeline.warm_dns_folds(span);
    }
    let n = workers.len();
    for w in workers.iter_mut() {
        w.dns_buf.clear();
    }
    for span in spans {
        for q in *span {
            workers[shard_of(q.src, n)].dns_buf.push(*q);
        }
    }
    run_workers(workers, metrics, |w| {
        let chunk = reduce_dns_chunk(&w.dns_buf, &engine.meta, &w.fold, &w.filter);
        w.absorb(chunk, engine.pipeline.history(), engine.pipeline.ua_history());
    });
}

/// Normalizes raw proxy spans on the worker pool, then partitions the
/// normalized records across the shards and reduces in parallel.
fn reduce_proxy_sharded(
    engine: &Engine,
    metrics: &ShardMetrics,
    accum: &mut DayAccum,
    workers: &mut [ShardWorker],
    spans: &[&[ProxyRecord]],
    dhcp: &DhcpLog,
) {
    let normalized: Vec<(Vec<ProxyRecord>, NormalizationCounts)> =
        map_shards(spans, |span| engine.pipeline.normalize_proxy_records(span, dhcp));
    for (_, counts) in &normalized {
        accum.merge_norm(counts);
    }
    for (records, _) in &normalized {
        engine.pipeline.warm_proxy_folds(records);
    }
    let n = workers.len();
    for w in workers.iter_mut() {
        w.proxy_buf.clear();
    }
    for (records, _) in &normalized {
        for r in records {
            let host = r.host.expect("proxy records must be normalized before reduction");
            workers[shard_of(host, n)].proxy_buf.push(*r);
        }
    }
    run_workers(workers, metrics, |w| {
        let chunk = reduce_proxy_chunk(&w.proxy_buf, &engine.meta, &w.fold, &w.filter);
        w.absorb(chunk, engine.pipeline.history(), engine.pipeline.ua_history());
    });
}

/// Runs `f` over every shard worker on scoped threads, timing each lane
/// on its `shard_reduce` series; a single shard runs inline.
fn run_workers(
    workers: &mut [ShardWorker],
    metrics: &ShardMetrics,
    f: impl Fn(&mut ShardWorker) + Sync,
) {
    if workers.len() <= 1 {
        if let Some(w) = workers.first_mut() {
            let started = Instant::now();
            f(w);
            metrics.reduce[0].observe_micros(started.elapsed().as_micros() as u64);
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = workers
            .iter_mut()
            .zip(&metrics.reduce)
            .map(|(w, timer)| {
                scope.spawn(move || {
                    let started = Instant::now();
                    f(w);
                    timer.observe_micros(started.elapsed().as_micros() as u64);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("shard reduce worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_total() {
        // The routing hash is part of the determinism contract: these
        // values must never change across releases.
        assert_eq!(shard_of(HostId::new(0), 4), 0);
        assert_eq!(shard_of(HostId::new(1), 4), 0x9E37_79B1usize % 4);
        for i in 0..1000u32 {
            let s = shard_of(HostId::new(i), 7);
            assert!(s < 7);
            assert_eq!(s, shard_of(HostId::new(i), 7));
        }
        // One shard degenerates to the identity route.
        for i in 0..100u32 {
            assert_eq!(shard_of(HostId::new(i), 1), 0);
        }
    }

    #[test]
    fn shard_of_spreads_dense_host_ids() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..8000u32 {
            counts[shard_of(HostId::new(i), shards)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 500,
                "shard {i} starved ({c} of 8000 dense host ids): routing hash is skewed"
            );
        }
    }
}
