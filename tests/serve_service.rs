//! End-to-end service tests over real TCP: the daemon must be a
//! transparent, multi-tenant shell around the library engine.
//!
//! * **Equivalence** — the same LANL lines pushed through the HTTP ingest
//!   API produce bit-identical `DayReport` JSON and the same alert
//!   stream as the library streaming path, for several tenants ingesting
//!   concurrently, on every `ObjectStore` backend.
//! * **Durability + restore** — a graceful shutdown followed by a cold
//!   `Server::bind` over the same root store restores every tenant, its
//!   reports, and its alert cursor.
//! * **Typed wire errors** — each promised `{code, message}` envelope
//!   surfaces under its status over a real connection, including the
//!   `429` admission path with `Retry-After` and the `503` drain path.
//! * **Read-during-commit** — queries keep answering while a day's store
//!   commit is still writing (the persist-cursor lock never blocks the
//!   read path).

// Each integration-test crate uses a subset of the harness; the unused
// remainder is not a defect.
#[path = "support/backends.rs"]
#[allow(dead_code)]
mod support;

use earlybird::engine::{DayReport, IngestSource, MemBackend, ObjectStore};
use earlybird::logmodel::{format_dns_line, Day, DomainInterner, HostKind};
use earlybird::serve::{
    InvestigateRequest, ServeClient, Server, ServerConfig, TenantLimits, TenantSpec,
};
use earlybird::store::{ObjectInfo, ObjectUpload, StoreResult};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use earlybird_engine::CollectingSink;
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use support::Backend;

/// The spec describing a generated dataset's metadata.
fn spec_for(meta: &earlybird::logmodel::DatasetMeta) -> TenantSpec {
    TenantSpec {
        n_hosts: meta.n_hosts,
        host_kinds: meta
            .host_kinds
            .iter()
            .map(|k| if *k == HostKind::Server { "server".into() } else { "workstation".into() })
            .collect(),
        internal_suffixes: meta.internal_suffixes.clone(),
        bootstrap_days: meta.bootstrap_days,
        total_days: meta.total_days,
        auto_investigate: true,
        soc_seeds: Vec::new(),
        retain_days: 0,
    }
}

/// Canonical JSON of a report with the wall-clock noise zeroed — the
/// bit-identity token for service-vs-library comparison.
fn report_json(report: &DayReport) -> String {
    let mut r = report.clone();
    r.stages.wall_micros = 0;
    serde_json::to_string(&r).expect("report serializes")
}

/// One HTTP exchange on a throwaway connection, returning status,
/// lower-cased headers, and body — for protocol-level assertions the
/// typed client hides.
fn raw_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: earlybird\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

/// The whole LANL challenge through the service, two tenants at once:
/// every finish ack is bit-identical JSON to the library report, the
/// alert streams match, investigations agree, and a graceful shutdown +
/// cold rebind restores both tenants — on every backend.
#[test]
fn service_matches_library_and_survives_restart() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let spec = spec_for(&challenge.dataset.meta);

    // Pre-render each day as the span texts every consumer will see.
    let day_spans: Vec<(u32, Vec<String>)> = challenge
        .dataset
        .days
        .iter()
        .map(|d| {
            let lines: Vec<String> =
                d.queries.iter().map(|q| format_dns_line(q, &challenge.dataset.domains)).collect();
            let chunk = lines.len().div_ceil(3).max(1);
            let spans = lines
                .chunks(chunk)
                .map(|c| {
                    let mut s = c.join("\n");
                    s.push('\n');
                    s
                })
                .collect();
            (d.day.index(), spans)
        })
        .collect();

    // Library reference over the exact same lines.
    let sink = CollectingSink::new();
    let ref_alerts = sink.handle();
    let mut ref_engine = spec
        .builder()
        .sink(sink)
        .build(Arc::new(DomainInterner::new()), spec.dataset_meta().unwrap())
        .expect("valid spec");
    let mut ref_reports = Vec::new();
    for (day, spans) in &day_spans {
        let mut ingest = ref_engine.begin_day(Day::new(*day), IngestSource::Dns);
        for span in spans {
            ingest.push_lines(span);
        }
        ref_reports.push(ingest.finish());
    }
    let ref_alerts = ref_alerts.snapshot();
    assert!(!ref_alerts.is_empty(), "the challenge must produce alerts");

    for backend in Backend::matrix("serve-service") {
        let context = backend.name();
        let server = Server::bind(backend.boxed_store(), ServerConfig::default())
            .unwrap_or_else(|e| panic!("{context}: bind: {e}"));
        let addr = server.addr();
        let handle = server.spawn();

        // Two tenants ingest the same days concurrently; each must see
        // library-identical results in isolation.
        let day_spans = &day_spans;
        let ref_reports = &ref_reports;
        let ref_alert_slice = &ref_alerts[..];
        let spec_ref = &spec;
        std::thread::scope(|s| {
            for name in ["acme", "globex"] {
                s.spawn(move || {
                    let mut client = ServeClient::new(addr);
                    client.create_tenant(name, spec_ref).expect("create tenant");
                    for ((day, spans), reference) in day_spans.iter().zip(ref_reports) {
                        for span in spans {
                            let ack = client.push_span(name, *day, span).expect("push span");
                            assert!(!ack.duplicate, "{context}/{name}: day {day} not a dup");
                        }
                        let ack = client.finish_day(name, *day).expect("finish day");
                        assert!(ack.durable, "{context}/{name}: finish acks are durable");
                        assert_eq!(
                            report_json(&ack.report),
                            report_json(reference),
                            "{context}/{name}: day {day} report must be bit-identical JSON"
                        );
                    }
                    let page = client.alerts(name, 0).expect("alerts");
                    assert_eq!(
                        page.alerts, ref_alert_slice,
                        "{context}/{name}: service alert stream matches the library sink"
                    );
                });
            }
        });

        let mut client = ServeClient::new(addr);

        // Alert cursor contract: half-open paging over the sequence.
        let all = client.alerts("acme", 0).unwrap();
        let last_seq = all.alerts.last().unwrap().sequence;
        assert_eq!(all.next_since, last_seq + 1);
        let mid_seq = all.alerts[all.alerts.len() / 2].sequence;
        let page = client.alerts("acme", mid_seq).unwrap();
        assert!(page.alerts.iter().all(|a| a.sequence >= mid_seq));
        assert_eq!(page.alerts.last().unwrap().sequence, last_seq);
        assert_eq!(page.next_since, last_seq + 1);
        let empty = client.alerts("acme", all.next_since).unwrap();
        assert!(empty.alerts.is_empty(), "{context}: cursor at the end reads nothing");
        assert_eq!(empty.next_since, all.next_since, "{context}: an empty read keeps the cursor");

        // Alert cursors persist with the engine: capture them before any
        // non-checkpointed activity (investigations emit, but only a
        // day's finish commits).
        let cursors: BTreeMap<String, u64> = client
            .tenants()
            .unwrap()
            .tenants
            .into_iter()
            .map(|t| (t.name, t.next_alert_sequence))
            .collect();
        assert_eq!(cursors.len(), 2, "{context}: both tenants registered");

        // Every hint mode answers over the wire; hinted campaign
        // investigations agree with the library.
        for campaign in &challenge.campaigns {
            let req = InvestigateRequest::hint_hosts(
                campaign.day.index(),
                campaign.hint_hosts.iter().map(|h| h.index()),
            );
            let over_wire = client.investigate("acme", &req).unwrap();
            let in_library = ref_engine
                .investigate(
                    campaign.day,
                    earlybird::engine::Investigation::from_hint_hosts(
                        campaign.hint_hosts.iter().copied(),
                    ),
                )
                .unwrap();
            assert_eq!(
                over_wire.outcome, in_library.outcome,
                "{context}: campaign day {:?} outcome",
                campaign.day
            );
        }
        let last_day = day_spans.last().unwrap().0;
        assert!(client.investigate("acme", &InvestigateRequest::no_hint(last_day)).is_ok());
        assert!(client
            .investigate("acme", &InvestigateRequest::seed_names(last_day, ["cc.alpha.c3"]))
            .is_ok());

        let reports_before = client.reports("acme").unwrap().reports;

        // Graceful shutdown, then a cold start over the same root store.
        let ack = client.shutdown().unwrap();
        assert_eq!(ack.open_days_dropped, 0, "{context}: every day was finished");
        drop(client);
        handle.join();

        let restarted = Server::bind(backend.boxed_store(), ServerConfig::default())
            .unwrap_or_else(|e| panic!("{context}: rebind: {e}"));
        assert_eq!(restarted.tenant_count(), 2, "{context}: cold start restores both tenants");
        let addr = restarted.addr();
        let handle = restarted.spawn();
        let mut client = ServeClient::new(addr);

        let restored = client.reports("acme").unwrap().reports;
        assert_eq!(restored.len(), reports_before.len(), "{context}: all acked days restored");
        for (a, b) in restored.iter().zip(&reports_before) {
            assert_eq!(a.day, b.day, "{context}: restored day order");
            assert_eq!(a.bootstrap, b.bootstrap, "{context}: restored bootstrap flag");
            assert!(
                a.stages.deterministic_eq(&b.stages),
                "{context}: restored counters for {:?}",
                a.day
            );
            assert_eq!(a.dns_counts, b.dns_counts, "{context}: restored dns counts");
        }

        // The alert log restarts empty, but the cursor space does not
        // regress: the next sequence resumes from the persisted engine.
        let after = client.tenants().unwrap();
        for t in &after.tenants {
            assert_eq!(
                Some(&t.next_alert_sequence),
                cursors.get(&t.name),
                "{context}/{}: alert cursor is monotone across restart",
                t.name
            );
        }
        let fresh = client.alerts("acme", 0).unwrap();
        assert!(fresh.alerts.is_empty(), "{context}: restored log holds no replayed alerts");
        assert_eq!(fresh.next_since, 0);

        // Re-finishing an already-durable day replays its stored
        // counters without a new commit.
        let dup = client.finish_day("globex", last_day).unwrap();
        assert!(dup.report.duplicate && dup.durable, "{context}: replay is a durable no-op");
        assert!(
            dup.report.stages.deterministic_eq(&ref_reports.last().unwrap().stages),
            "{context}: replayed counters match the original day"
        );

        client.shutdown().unwrap();
        drop(client);
        handle.join();
        backend.cleanup();
    }
}

/// Every promised error envelope surfaces typed over a real connection.
#[test]
fn wire_errors_surface_typed_over_http() {
    let server = Server::bind(Box::new(MemBackend::new()), ServerConfig::default()).expect("bind");
    let addr = server.addr();
    let handle = server.spawn();
    let mut client = ServeClient::new(addr);

    let spec = TenantSpec::lanl(4, 0, 8);
    client.create_tenant("t1", &spec).unwrap();

    // 404 unknown_tenant / unknown_day, and 404 not_found for no route.
    let err = client.reports("ghost").unwrap_err();
    let api = err.as_api().expect("typed envelope");
    assert_eq!((api.status, api.code.as_str()), (404, "unknown_tenant"));
    let err = client.report("t1", 9999).unwrap_err();
    let api = err.as_api().expect("typed envelope");
    assert_eq!((api.status, api.code.as_str()), (404, "unknown_day"));
    let (status, _, body) = raw_request(addr, "GET", "/v2/espresso", b"");
    assert_eq!(status, 404);
    assert!(body.contains("\"not_found\""), "body was {body}");

    // 400 bad_request: malformed day segment, malformed spec JSON, bad
    // investigation mode.
    let (status, _, body) = raw_request(addr, "GET", "/v1/t1/days/3x/report", b"");
    assert_eq!(status, 400);
    assert!(body.contains("\"bad_request\""), "body was {body}");
    let (status, _, body) = raw_request(addr, "PUT", "/v1/t2", b"{not json");
    assert_eq!(status, 400);
    assert!(body.contains("\"bad_request\""), "body was {body}");
    let mut bad_mode = InvestigateRequest::no_hint(0);
    bad_mode.mode = "tarot".into();
    let err = client.investigate("t1", &bad_mode).unwrap_err();
    let api = err.as_api().expect("typed envelope");
    assert_eq!((api.status, api.code.as_str()), (400, "bad_request"));

    // 405 method_not_allowed on a known route shape.
    let (status, _, body) = raw_request(addr, "DELETE", "/v1/tenants", b"");
    assert_eq!(status, 405);
    assert!(body.contains("\"method_not_allowed\""), "body was {body}");

    // 409 tenant_exists on a duplicate PUT.
    let err = client.create_tenant("t1", &spec).unwrap_err();
    let api = err.as_api().expect("typed envelope");
    assert_eq!((api.status, api.code.as_str()), (409, "tenant_exists"));

    // 409 stale_day: a never-ingested day behind the newest report.
    client.push_span("t1", 2, "").unwrap();
    let ack = client.finish_day("t1", 2).unwrap();
    assert!(ack.durable);
    let err = client.push_span("t1", 1, "x\n").unwrap_err();
    let api = err.as_api().expect("typed envelope");
    assert_eq!((api.status, api.code.as_str()), (409, "stale_day"));
    let err = client.finish_day("t1", 0).unwrap_err();
    assert_eq!(err.as_api().expect("typed").code, "stale_day");

    // Replays of the ingested day stay open to duplicate-tolerant reads.
    let ack = client.push_span("t1", 2, "whatever\n").unwrap();
    assert!(ack.duplicate);
    assert_eq!(ack.records_pushed, 0, "duplicate spans are no-ops");

    client.shutdown().unwrap();
    drop(client);
    handle.join();
}

/// Admission control answers `429 over_capacity` with `Retry-After`
/// before any engine work happens, and recovers once the day is sealed.
#[test]
fn admission_control_rejects_over_capacity_spans() {
    let cfg = ServerConfig {
        limits: TenantLimits { max_inflight_spans: 64, max_open_bytes: 64 },
        ..ServerConfig::default()
    };
    let server = Server::bind(Box::new(MemBackend::new()), cfg).expect("bind");
    let addr = server.addr();
    let handle = server.spawn();
    let mut client = ServeClient::new(addr);
    client.create_tenant("t1", &TenantSpec::lanl(4, 0, 4)).unwrap();

    // A single span over the byte ceiling: refused with Retry-After.
    let big = "x".repeat(80);
    let (status, headers, body) = raw_request(addr, "POST", "/v1/t1/days/0/spans", big.as_bytes());
    assert_eq!(status, 429);
    assert!(body.contains("\"over_capacity\""), "body was {body}");
    assert!(
        headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
        "429 must carry Retry-After, got {headers:?}"
    );

    // Under the ceiling passes; the next span would cross it and is
    // refused; sealing the day releases the buffered bytes.
    let half = "y".repeat(40);
    client.push_span("t1", 0, &half).unwrap();
    let err = client.push_span("t1", 0, &half).unwrap_err();
    assert_eq!(err.as_api().expect("typed").code, "over_capacity");
    client.finish_day("t1", 0).unwrap();
    client.push_span("t1", 1, &half).unwrap();
    client.finish_day("t1", 1).unwrap();

    client.shutdown().unwrap();
    drop(client);
    handle.join();
}

/// After the drain began, live keep-alive connections get `503 draining`
/// for new work instead of a hang or a reset.
#[test]
fn draining_daemon_refuses_new_work_with_503() {
    let server = Server::bind(Box::new(MemBackend::new()), ServerConfig::default()).expect("bind");
    let addr = server.addr();
    let handle = server.spawn();

    let mut ingester = ServeClient::new(addr);
    ingester.create_tenant("t1", &TenantSpec::lanl(4, 0, 4)).unwrap();
    ingester.push_span("t1", 0, "span one\n").unwrap(); // pool the connection

    let mut admin = ServeClient::new(addr);
    let ack = admin.shutdown().unwrap();
    assert_eq!(ack.open_days_dropped, 1, "the unfinished day is dropped, not persisted");

    // The ingester's pooled connection is still served — but only with
    // refusals for mutating work.
    let err = ingester.push_span("t1", 0, "span two\n").unwrap_err();
    let api = err.as_api().expect("typed envelope");
    assert_eq!((api.status, api.code.as_str()), (503, "draining"));
    let err = ingester.create_tenant("t2", &TenantSpec::lanl(4, 0, 4)).unwrap_err();
    assert_eq!(err.as_api().expect("typed").code, "draining");
    let err = admin.shutdown().unwrap_err();
    assert_eq!(err.as_api().expect("typed").code, "draining", "a second drain is refused");

    drop(ingester);
    drop(admin);
    handle.join();
}

/// A backend whose manifest swap (the commit point) can be slowed down on
/// demand, to hold a day's store commit open while queries run.
#[derive(Debug)]
struct SlowStore {
    inner: Box<dyn ObjectStore>,
    armed: Arc<AtomicBool>,
    committing: Arc<AtomicBool>,
    delay: Duration,
}

impl ObjectStore for SlowStore {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn put_atomic(&self, name: &str) -> StoreResult<Box<dyn ObjectUpload>> {
        self.inner.put_atomic(name)
    }

    fn get(&self, name: &str) -> StoreResult<Box<dyn std::io::Read + Send>> {
        self.inner.get(name)
    }

    fn list(&self) -> StoreResult<Vec<ObjectInfo>> {
        self.inner.list()
    }

    fn delete(&self, name: &str) -> StoreResult<()> {
        self.inner.delete(name)
    }

    fn quarantine(&self, name: &str) -> StoreResult<String> {
        self.inner.quarantine(name)
    }

    fn read_manifest(&self) -> StoreResult<Option<Vec<u8>>> {
        self.inner.read_manifest()
    }

    fn swap_manifest(&self, expected: Option<u64>, next: u64, bytes: &[u8]) -> StoreResult<()> {
        if self.armed.load(Ordering::SeqCst) {
            self.committing.store(true, Ordering::SeqCst);
            std::thread::sleep(self.delay);
        }
        let result = self.inner.swap_manifest(expected, next, bytes);
        self.committing.store(false, Ordering::SeqCst);
        result
    }

    fn scope(&self, name: &str) -> StoreResult<Box<dyn ObjectStore>> {
        Ok(Box::new(SlowStore {
            inner: self.inner.scope(name)?,
            armed: Arc::clone(&self.armed),
            committing: Arc::clone(&self.committing),
            delay: self.delay,
        }))
    }

    fn scopes(&self) -> StoreResult<Vec<String>> {
        self.inner.scopes()
    }
}

/// Queries must not wait for a day's store commit: with the commit point
/// held open for half a second, reports and alerts still answer in
/// milliseconds — the regression test for the persist-cursor lock that
/// used to pin the whole engine behind `&mut` during checkpoints.
#[test]
fn queries_flow_while_a_day_commit_is_writing() {
    let armed = Arc::new(AtomicBool::new(false));
    let committing = Arc::new(AtomicBool::new(false));
    let delay = Duration::from_millis(500);
    let root = SlowStore {
        inner: Box::new(MemBackend::new()),
        armed: Arc::clone(&armed),
        committing: Arc::clone(&committing),
        delay,
    };
    let server = Server::bind(Box::new(root), ServerConfig::default()).expect("bind");
    let addr = server.addr();
    let handle = server.spawn();

    let mut client = ServeClient::new(addr);
    client.create_tenant("t1", &TenantSpec::lanl(8, 1, 4)).unwrap();
    let lines: String = (0..64)
        .map(|i| format!("{}\t10.0.0.{}\td{}.example.c3\tA\t50.1.1.1\n", i * 60, i % 8, i % 5))
        .collect();
    client.push_span("t1", 0, &lines).unwrap();

    // Seal the day on a side thread with the commit point slowed down.
    armed.store(true, Ordering::SeqCst);
    let finish_done = Arc::new(AtomicBool::new(false));
    let finisher = std::thread::spawn({
        let finish_done = Arc::clone(&finish_done);
        move || {
            let mut c = ServeClient::new(addr);
            let ack = c.finish_day("t1", 0).expect("finish");
            finish_done.store(true, Ordering::SeqCst);
            ack
        }
    });
    let commit_wait = Instant::now();
    while !committing.load(Ordering::SeqCst) {
        assert!(commit_wait.elapsed() < Duration::from_secs(10), "commit never started");
        assert!(!finish_done.load(Ordering::SeqCst), "finish outran the slow commit");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The commit is now mid-write: every read path must still answer.
    let start = Instant::now();
    let reports = client.reports("t1").unwrap();
    assert_eq!(reports.reports.len(), 1, "the sealed day's report is already readable");
    client.alerts("t1", 0).unwrap();
    client.tenants().unwrap();
    let elapsed = start.elapsed();
    assert!(
        !finish_done.load(Ordering::SeqCst),
        "queries must complete while the commit is still writing"
    );
    assert!(
        elapsed < delay / 2,
        "queries took {elapsed:?} against a {delay:?} commit — they were serialized behind it"
    );

    let ack = finisher.join().expect("finisher thread");
    assert!(ack.durable);
    armed.store(false, Ordering::SeqCst);

    client.shutdown().unwrap();
    drop(client);
    handle.join();
}
