//! Durable checkpoint/restore of the engine's full mutable state.
//!
//! The paper's detector only works because it accumulates months of history
//! — new-domain profiles, rare-UA host counts, per-day contact indexes,
//! trained regression weights (§III-E, §IV). This module makes that state
//! survive a process restart with **bit-identical continuation**: ingest
//! days `1..N`, [`Engine::checkpoint`], restore into a fresh engine with
//! [`EngineBuilder::restore`], ingest days `N+1..M` — every report, alert,
//! and sink sequence number matches an uninterrupted run exactly.
//!
//! # Stream layout
//!
//! A store stream is one **full** block followed by any number of
//! **day-segment** blocks (see `earlybird_store::frame`):
//!
//! * [`Engine::checkpoint`] writes a full block: configuration (including
//!   trained models and the WHOIS registry), dataset metadata, all four
//!   interners, the raw-line host map, both cross-day histories, every
//!   stored day report, every retained contact index, and the alert
//!   sequence counter.
//! * [`Engine::checkpoint_day`] appends a segment with only the state added
//!   since the last `checkpoint`/`checkpoint_day` call — interner tails,
//!   history-log tails, the new days' reports and indexes — so a daily
//!   cycle persists O(day), not O(history). Append segments to the same
//!   file the full snapshot was written to.
//! * [`EngineBuilder::restore`] reads the full block, replays every
//!   trailing segment, and rebuilds the engine. Restored symbol numbering
//!   is identical to the original interners', so records produced against
//!   the original dataset (or a deterministic regeneration of it) remain
//!   valid.
//!
//! # Crash recovery
//!
//! Restoring and re-pushing the day that was in flight when the process
//! died gives at-least-once ingestion with no double counting: days the
//! snapshot already covers are absorbed by the engine's duplicate-day
//! replay guard (a no-op returning the stored counters), and the partial
//! day simply ingests fresh.
//!
//! Machine-local performance knobs (`parallelism`, `parallel_threshold`,
//! `ingest_chunk_records`) are deliberately *not* restored — they come from
//! the [`EngineBuilder`] so a snapshot can move between machines; none of
//! them affects results. Alert sinks are external resources and likewise
//! come from the builder.

use crate::builder::{validate_config, EngineBuilder, EngineConfig};
use crate::core_loop::Engine;
use crate::report::{DayReport, StageCounters};
use earlybird_core::{BpConfig, CcModel, DailyPipeline, DayProduct, PipelineConfig, SimScorer};
use earlybird_logmodel::{Day, DomainInterner, HostMapper, PathInterner, UaInterner};
use earlybird_pipeline::{DomainHistory, UaHistory};
use earlybird_store::{
    sections, BlockKind, BlockReader, BlockWriter, CheckpointMeta, CompactionReport, Decoder,
    Encoder, SectionTag, StoreDir, StoreError, StoreResult, FORMAT_VERSION,
};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Watermarks of the state already persisted to the current store stream;
/// `checkpoint_day` writes everything beyond them. All the underlying
/// collections are append-only, which is what makes the delta well-defined.
#[derive(Clone, Debug, Default)]
pub(crate) struct PersistCursor {
    raw: usize,
    folded: usize,
    uas: usize,
    paths: usize,
    hosts: usize,
    history: usize,
    ua_pairs: usize,
    days: BTreeSet<Day>,
}

impl Engine {
    /// The persist-cursor lock. Checkpoints hold it for their whole write,
    /// so concurrent checkpoints serialize and each delta is well-defined;
    /// the engine's read paths never touch it.
    fn lock_cursor(&self) -> std::sync::MutexGuard<'_, PersistCursor> {
        self.persist_cursor.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn current_cursor(&self) -> PersistCursor {
        PersistCursor {
            raw: self.pipeline.raw_interner().len(),
            folded: self.pipeline.folded_interner().len(),
            uas: self.uas.len(),
            paths: self.paths.len(),
            hosts: self.line_hosts.len(),
            history: self.pipeline.history().ordered().len(),
            ua_pairs: self.pipeline.ua_history().pair_log().len(),
            days: self.reports.keys().copied().collect(),
        }
    }

    /// Writes a full snapshot of the engine — configuration (including any
    /// trained models), dataset metadata, interners, host map, histories,
    /// day reports, retained contact indexes, and the alert sequence
    /// counter — as one self-checking block, and resets the incremental
    /// cursor so subsequent [`Engine::checkpoint_day`] calls append
    /// segments relative to this snapshot.
    ///
    /// Takes `&self`: a checkpoint in flight never blocks the engine's
    /// read paths ([`Engine::report`], [`Engine::investigate`], ...) on a
    /// shared engine — only ingestion (which needs `&mut self`) waits.
    ///
    /// # Errors
    ///
    /// Propagates writer failures as [`StoreError::Io`].
    pub fn checkpoint<W: Write>(&self, out: &mut W) -> StoreResult<CheckpointMeta> {
        let mut cursor = self.lock_cursor();
        let meta = self.write_block(out, BlockKind::Full, &PersistCursor::default())?;
        *cursor = self.current_cursor();
        Ok(meta)
    }

    /// Appends an incremental segment holding only the state added since
    /// the last [`Engine::checkpoint`] / [`Engine::checkpoint_day`] call —
    /// O(day), not O(history). Append to the same stream the full snapshot
    /// was written to; [`EngineBuilder::restore`] replays segments in
    /// order.
    ///
    /// Calling this with no new days ingested writes a (tiny) empty
    /// segment, which restores as a no-op.
    ///
    /// # Errors
    ///
    /// Propagates writer failures as [`StoreError::Io`]. A day ingested
    /// *behind* the newest already-persisted day is refused as
    /// [`StoreError::StaleSegment`] — appending it would produce a chain
    /// the restore path rejects; write a fresh full snapshot
    /// ([`Engine::checkpoint`]) to persist back-filled days.
    pub fn checkpoint_day<W: Write>(&self, out: &mut W) -> StoreResult<CheckpointMeta> {
        let mut cursor = self.lock_cursor();
        Self::check_segment_freshness(&cursor, &self.reports)?;
        let delta = cursor.clone();
        let meta = self.write_block(out, BlockKind::DaySegment, &delta)?;
        *cursor = self.current_cursor();
        Ok(meta)
    }

    /// Rejects a segment that would persist a day older than the newest
    /// day already on the stream (see [`StoreError::StaleSegment`]).
    fn check_segment_freshness(
        cursor: &PersistCursor,
        reports: &std::collections::BTreeMap<Day, DayReport>,
    ) -> StoreResult<()> {
        let Some(&last) = cursor.days.iter().next_back() else {
            return Ok(());
        };
        for day in reports.keys() {
            if *day < last && !cursor.days.contains(day) {
                return Err(StoreError::StaleSegment {
                    day: day.index(),
                    last_persisted: last.index(),
                });
            }
        }
        Ok(())
    }

    /// [`Engine::checkpoint`] against a managed [`StoreDir`]: the full
    /// block is staged through the store's backend (a temp file, a
    /// multipart upload) and committed atomically, replacing the store's
    /// whole chain (the incremental cursor resets only after the commit
    /// is durable, so a failed commit never strands unpersisted state).
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s from the write or the directory commit.
    pub fn checkpoint_to(&self, dir: &mut StoreDir) -> StoreResult<CheckpointMeta> {
        let mut cursor = self.lock_cursor();
        self.checkpoint_to_locked(dir, &mut cursor)
    }

    fn checkpoint_to_locked(
        &self,
        dir: &mut StoreDir,
        cursor: &mut PersistCursor,
    ) -> StoreResult<CheckpointMeta> {
        let mut pending = dir.begin(BlockKind::Full)?;
        let meta = self.write_block(&mut pending, BlockKind::Full, &PersistCursor::default())?;
        dir.commit_full(pending, &meta)?;
        *cursor = self.current_cursor();
        Ok(meta)
    }

    /// The daily-cycle persistence step against a managed [`StoreDir`]:
    /// writes a full snapshot when the directory is empty (first run),
    /// otherwise appends an O(day) segment — then, if the directory's
    /// [`earlybird_store::CompactionTrigger`] has fired, folds the chain
    /// back into a single full block via [`compact_store`]. Each commit is
    /// atomic; a crash at any point leaves either the old chain or the new
    /// one.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s, including [`StoreError::StaleSegment`] for a
    /// day behind the chain's newest persisted day. If the *block commit*
    /// fails, the engine's incremental cursor is unchanged; if the commit
    /// succeeded and the *compaction pass* then fails, the day is already
    /// durable and the cursor reflects it — the old chain stays valid
    /// either way. Treat any error as fatal for this process and recover
    /// by restoring the directory (at-least-once semantics absorb the
    /// re-pushed day).
    pub fn checkpoint_day_to(&self, dir: &mut StoreDir) -> StoreResult<DayPersist> {
        let mut guard = self.lock_cursor();
        let block = if dir.is_empty() {
            self.checkpoint_to_locked(dir, &mut guard)?
        } else {
            Self::check_segment_freshness(&guard, &self.reports)?;
            let cursor = guard.clone();
            let mut pending = dir.begin(BlockKind::DaySegment)?;
            let meta = self.write_block(&mut pending, BlockKind::DaySegment, &cursor)?;
            dir.commit_segment(pending, &meta)?;
            *guard = self.current_cursor();
            meta
        };
        drop(guard);
        let compaction = if dir.compaction_due() {
            let _compact_span = self.metrics.compact.start();
            Some(compact_store(dir)?)
        } else {
            None
        };
        Ok(DayPersist { block, compaction })
    }

    fn write_block<W: Write>(
        &self,
        out: &mut W,
        kind: BlockKind,
        cursor: &PersistCursor,
    ) -> StoreResult<CheckpointMeta> {
        let _checkpoint_span = self.metrics.checkpoint.start();
        let mut block = BlockWriter::begin(out, kind)?;

        if kind == BlockKind::Full {
            let mut e = Encoder::new();
            write_config(&mut e, &self.cfg);
            block.section(SectionTag::Config, e)?;
            let mut e = Encoder::new();
            sections::write_dataset_meta(&mut e, &self.meta);
            block.section(SectionTag::Meta, e)?;
        }

        let mut e = Encoder::new();
        sections::write_interner_slice(&mut e, self.pipeline.raw_interner(), cursor.raw);
        sections::write_interner_slice(&mut e, self.pipeline.folded_interner(), cursor.folded);
        sections::write_interner_slice(&mut e, &self.uas, cursor.uas);
        sections::write_interner_slice(&mut e, &self.paths, cursor.paths);
        block.section(SectionTag::Interners, e)?;

        let mut e = Encoder::new();
        sections::write_host_mapper(&mut e, &self.line_hosts, cursor.hosts);
        block.section(SectionTag::Hosts, e)?;

        let mut e = Encoder::new();
        sections::write_domain_history(&mut e, self.pipeline.history(), cursor.history);
        sections::write_ua_history(&mut e, self.pipeline.ua_history(), cursor.ua_pairs);
        block.section(SectionTag::History, e)?;

        let new_reports: Vec<&DayReport> =
            self.reports.iter().filter(|(d, _)| !cursor.days.contains(d)).map(|(_, r)| r).collect();
        let mut e = Encoder::new();
        e.usizev(new_reports.len());
        for report in &new_reports {
            write_day_report(&mut e, report);
        }
        block.section(SectionTag::Reports, e)?;

        let new_products: Vec<(Day, &DayProduct)> = self
            .products
            .iter()
            .filter(|(d, _)| !cursor.days.contains(d))
            .map(|(d, p)| (*d, p))
            .collect();
        let mut e = Encoder::new();
        e.usizev(new_products.len());
        {
            // Day products are immutable once retained, so their encoding is
            // computed on the first checkpoint that ships them and spliced
            // verbatim into every later full block. Entries for evicted days
            // are pruned here; replaced days are invalidated at insertion.
            let mut cache = self.product_encodings.lock().expect("product encoding cache poisoned");
            cache.retain(|d, _| self.products.contains_key(d));
            for (day, product) in &new_products {
                let bytes = cache.entry(*day).or_insert_with(|| {
                    let mut pe = Encoder::new();
                    sections::write_opt_dns_counts(&mut pe, product.dns_counts.as_ref());
                    sections::write_opt_proxy_counts(&mut pe, product.proxy_counts.as_ref());
                    sections::write_opt_norm_counts(&mut pe, product.norm_counts.as_ref());
                    sections::write_day_index(&mut pe, &product.index);
                    Arc::new(pe.into_bytes())
                });
                e.raw(bytes);
            }
        }
        block.section(SectionTag::Products, e)?;

        let mut e = Encoder::new();
        e.varint(self.sequence.load(Ordering::SeqCst));
        block.section(SectionTag::Sequence, e)?;

        let (bytes, checksum) = block.finish()?;
        self.metrics.checkpoint_bytes.add(bytes);
        Ok(CheckpointMeta {
            kind,
            format_version: FORMAT_VERSION,
            bytes,
            checksum,
            days: new_reports.len(),
            retained_days: new_products.len(),
        })
    }

    /// Applies one block's state sections (everything after Config/Meta)
    /// onto this engine.
    fn apply_state_sections<R: Read>(&mut self, block: &mut BlockReader<'_, R>) -> StoreResult<()> {
        let payload = block.section(SectionTag::Interners)?;
        let mut d = Decoder::new(&payload, SectionTag::Interners.name());
        sections::read_interner_into(&mut d, self.pipeline.raw_interner(), "raw domain")?;
        sections::read_interner_into(&mut d, self.pipeline.folded_interner(), "folded domain")?;
        sections::read_interner_into(&mut d, &self.uas, "user-agent")?;
        sections::read_interner_into(&mut d, &self.paths, "path")?;
        d.finish()?;

        let payload = block.section(SectionTag::Hosts)?;
        let mut d = Decoder::new(&payload, SectionTag::Hosts.name());
        sections::read_host_mapper_into(&mut d, &mut self.line_hosts)?;
        d.finish()?;

        let payload = block.section(SectionTag::History)?;
        let mut d = Decoder::new(&payload, SectionTag::History.name());
        let (start, domains, days_ingested) = sections::read_domain_history(&mut d)?;
        if start != self.pipeline.history().ordered().len() {
            return Err(StoreError::corrupt(format!(
                "history delta starts at {start}, engine holds {}",
                self.pipeline.history().ordered().len()
            )));
        }
        self.pipeline.restore_history_delta(domains, days_ingested);
        let (threshold, start, pairs) = sections::read_ua_history(&mut d)?;
        if threshold != self.cfg.pipeline.rare_ua_threshold {
            return Err(StoreError::corrupt(format!(
                "snapshot rare-UA threshold {threshold} disagrees with configuration {}",
                self.cfg.pipeline.rare_ua_threshold
            )));
        }
        if start != self.pipeline.ua_history().pair_log().len() {
            return Err(StoreError::corrupt(format!(
                "user-agent history delta starts at {start}, engine holds {}",
                self.pipeline.ua_history().pair_log().len()
            )));
        }
        self.pipeline.restore_ua_delta(pairs);
        d.finish()?;

        let payload = block.section(SectionTag::Reports)?;
        let mut d = Decoder::new(&payload, SectionTag::Reports.name());
        // Mirror of the write-side `StaleSegment` guard: a segment may only
        // carry days beyond everything already replayed — including days
        // earlier *in the same segment*, so an internally-descending
        // (corrupt or hand-crafted) segment is rejected too.
        let mut newest = self.reports.keys().next_back().copied();
        let is_segment = block.kind() == BlockKind::DaySegment;
        let n = d.seq_len(4)?;
        for _ in 0..n {
            let report = read_day_report(&mut d)?;
            let day = report.day;
            if is_segment {
                if newest.is_some_and(|newest| day < newest) {
                    return Err(StoreError::corrupt(format!(
                        "segment persists stale {day} behind already-replayed {}",
                        newest.expect("checked")
                    )));
                }
                newest = Some(day);
            }
            if self.reports.insert(day, report).is_some() {
                return Err(StoreError::corrupt(format!("duplicate report for {day}")));
            }
        }
        d.finish()?;

        let payload = block.section(SectionTag::Products)?;
        let mut d = Decoder::new(&payload, SectionTag::Products.name());
        let n = d.seq_len(4)?;
        for _ in 0..n {
            let dns_counts = sections::read_opt_dns_counts(&mut d)?;
            let proxy_counts = sections::read_opt_proxy_counts(&mut d)?;
            let norm_counts = sections::read_opt_norm_counts(&mut d)?;
            let index = sections::read_day_index(&mut d)?;
            let day = index.day();
            let product = DayProduct {
                day,
                index,
                folded: Arc::clone(self.pipeline.folded_interner()),
                dns_counts,
                proxy_counts,
                norm_counts,
            };
            self.invalidate_product_encoding(day);
            if self.products.insert(day, product).is_some() {
                return Err(StoreError::corrupt(format!("duplicate retained index for {day}")));
            }
        }
        d.finish()?;
        // Enforce the retention window across blocks exactly like live
        // ingestion does.
        if let Some(limit) = self.cfg.retain_days {
            while self.products.len() > limit {
                self.products.pop_first();
            }
        }

        let payload = block.section(SectionTag::Sequence)?;
        let mut d = Decoder::new(&payload, SectionTag::Sequence.name());
        let sequence = d.varint()?;
        d.finish()?;
        if sequence < self.sequence.load(Ordering::SeqCst) {
            return Err(StoreError::corrupt("alert sequence counter moved backwards"));
        }
        self.sequence.store(sequence, Ordering::SeqCst);
        Ok(())
    }
}

/// Outcome of one [`Engine::checkpoint_day_to`] cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DayPersist {
    /// The block committed this cycle: a full snapshot when the directory
    /// was empty (`kind == BlockKind::Full`), else an O(day) segment.
    pub block: CheckpointMeta,
    /// The compaction pass this append triggered, if any.
    pub compaction: Option<CompactionReport>,
}

/// Folds a [`StoreDir`]'s `full + N segments` chain back into a single
/// full block, applying the directory's retention policy.
///
/// The pass never touches live engine state: the chain is restored into a
/// *scratch* engine (semantics come entirely from the snapshot, so any
/// builder would do), contact indexes older than
/// [`earlybird_store::RetentionPolicy::retain_days`] are pruned — their
/// counter reports stay, making the new full block the source of truth for
/// evicted days — and the re-snapshotted state is committed through
/// [`StoreDir::commit_full`]'s atomic manifest swap. A crash at any point
/// leaves either the old chain or the new block, never a torn store;
/// leftover objects are quarantined by the next [`StoreDir::open`], and
/// superseded blocks whose best-effort deletion fails are counted in
/// [`CompactionReport::gc_failures`] rather than silently leaked.
///
/// An engine restored from the compacted store continues bit-identically
/// to one restored from the original chain (see the `lifecycle`
/// integration suite).
///
/// # Errors
///
/// Typed [`StoreError`]s from the chain replay or the commit; compacting
/// an empty directory is [`StoreError::Corrupt`].
pub fn compact_store(dir: &mut StoreDir) -> StoreResult<CompactionReport> {
    if dir.is_empty() {
        return Err(StoreError::corrupt("cannot compact an empty store: no full snapshot yet"));
    }
    let bytes_before = dir.chain_bytes();
    let segments_folded = dir.segment_count();
    let gc_before = dir.gc_failures();
    let mut scratch = EngineBuilder::lanl().restore(&mut dir.reader()?)?;
    let days_pruned = match dir.config().retention.retain_days {
        Some(keep) => scratch.prune_retained(keep),
        None => 0,
    };
    let mut pending = dir.begin(BlockKind::Full)?;
    let meta = scratch.write_block(&mut pending, BlockKind::Full, &PersistCursor::default())?;
    dir.commit_full(pending, &meta)?;
    Ok(CompactionReport {
        segments_folded,
        bytes_before,
        bytes_after: meta.bytes,
        days_pruned,
        gc_failures: dir.gc_failures() - gc_before,
        full: meta,
    })
}

impl EngineBuilder {
    /// [`EngineBuilder::restore`] over a managed [`StoreDir`]'s chain, in
    /// manifest order.
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::restore`], plus [`StoreError::Io`] if a
    /// chain file cannot be opened.
    pub fn restore_dir(self, dir: &StoreDir) -> Result<Engine, StoreError> {
        self.restore(&mut dir.reader()?)
    }

    /// [`EngineBuilder::restore_with_domains`] over a managed
    /// [`StoreDir`]'s chain.
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::restore_with_domains`].
    pub fn restore_dir_with_domains(
        self,
        raw: Arc<DomainInterner>,
        dir: &StoreDir,
    ) -> Result<Engine, StoreError> {
        self.restore_with_domains(raw, &mut dir.reader()?)
    }

    /// Rebuilds an engine from a store stream written by
    /// [`Engine::checkpoint`] (optionally followed by
    /// [`Engine::checkpoint_day`] segments).
    ///
    /// All *semantic* configuration — pipeline thresholds, beacon detector,
    /// C&C and similarity models (trained or heuristic), belief-propagation
    /// limits, WHOIS registry and defaults, SOC seeds, bootstrap split,
    /// retention window — comes from the snapshot; setting those on the
    /// builder has no effect on restore. The builder contributes what a
    /// snapshot cannot carry across processes: alert sinks, the
    /// machine-local performance knobs ([`EngineBuilder::parallelism`],
    /// [`EngineBuilder::parallel_threshold`],
    /// [`EngineBuilder::ingest_chunk_records`]) — none of which affects
    /// results — and, optionally, shared interners:
    /// [`EngineBuilder::proxy_interners`] installed before `restore` are
    /// honored (the snapshot contents are verified against them, so
    /// symbols a dataset minted after the checkpoint stay valid), and
    /// [`EngineBuilder::restore_with_domains`] does the same for the raw
    /// domain interner of dataset-driven record pushes.
    ///
    /// The restored engine's continued operation is bit-identical to an
    /// engine that never restarted: identical reports, alerts, and sink
    /// sequence numbers for every subsequently ingested day.
    ///
    /// # Errors
    ///
    /// Every defect is a typed [`StoreError`]: [`StoreError::BadMagic`] for
    /// non-snapshot input, [`StoreError::UnsupportedVersion`] for future
    /// formats, [`StoreError::Truncated`] for torn writes,
    /// [`StoreError::ChecksumMismatch`] for bit rot, and
    /// [`StoreError::Corrupt`] for anything that decodes but violates an
    /// engine invariant — including a supplied shared interner whose
    /// contents disagree with the snapshot. No input panics.
    pub fn restore<R: Read>(self, input: &mut R) -> Result<Engine, StoreError> {
        self.restore_impl(None, input)
    }

    /// [`EngineBuilder::restore`] sharing the caller's raw domain interner
    /// (typically a dataset's), so records parsed or generated against it
    /// — including symbols minted *after* the checkpoint — remain valid in
    /// the restored engine. The snapshot's raw-interner contents are
    /// verified against `raw`; any disagreement is a typed
    /// [`StoreError::Corrupt`].
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::restore`].
    pub fn restore_with_domains<R: Read>(
        self,
        raw: Arc<DomainInterner>,
        input: &mut R,
    ) -> Result<Engine, StoreError> {
        self.restore_impl(Some(raw), input)
    }

    fn restore_impl<R: Read>(
        self,
        raw: Option<Arc<DomainInterner>>,
        input: &mut R,
    ) -> Result<Engine, StoreError> {
        let (builder_cfg, sinks, uas, paths, metrics) = self.into_parts();
        let restore_span = metrics.restore.start();

        let Some(mut block) = BlockReader::next_block(input)? else {
            return Err(StoreError::Truncated { context: "snapshot stream" });
        };
        if block.kind() != BlockKind::Full {
            return Err(StoreError::corrupt("store stream must begin with a full snapshot"));
        }

        let payload = block.section(SectionTag::Config)?;
        let mut d = Decoder::new(&payload, SectionTag::Config.name());
        let mut cfg = read_config(&mut d)?;
        d.finish()?;
        cfg.parallelism = builder_cfg.parallelism.max(1);
        cfg.parallel_threshold = builder_cfg.parallel_threshold.max(1);
        cfg.ingest_chunk_records = builder_cfg.ingest_chunk_records.max(1);
        validate_config(&cfg).map_err(|e| StoreError::corrupt(e.to_string()))?;

        let payload = block.section(SectionTag::Meta)?;
        let mut d = Decoder::new(&payload, SectionTag::Meta.name());
        let meta = sections::read_dataset_meta(&mut d)?;
        d.finish()?;

        // Empty histories plus either fresh interners or caller-shared
        // ones (whose contents the snapshot sections verify): the first
        // block's sections are deltas from zero, applied through the same
        // path as any later segment. The pipeline is assembled *before*
        // SOC seeds are re-interned, so the folded interner is only ever
        // extended by snapshot contents.
        let pipeline = DailyPipeline::from_restored(
            raw.unwrap_or_else(|| Arc::new(DomainInterner::new())),
            Arc::new(DomainInterner::new()),
            cfg.pipeline,
            DomainHistory::new(),
            UaHistory::new(cfg.pipeline.rare_ua_threshold),
        );
        let mut engine = Engine::from_restored(
            cfg,
            sinks,
            meta,
            pipeline,
            uas.unwrap_or_else(|| Arc::new(UaInterner::new())),
            paths.unwrap_or_else(|| Arc::new(PathInterner::new())),
            HostMapper::new(),
            metrics,
        );
        engine.apply_state_sections(&mut block)?;
        block.finish()?;

        while let Some(mut block) = BlockReader::next_block(input)? {
            if block.kind() != BlockKind::DaySegment {
                return Err(StoreError::corrupt(
                    "only one full snapshot may open a store stream; found a second",
                ));
            }
            engine.apply_state_sections(&mut block)?;
            block.finish()?;
        }

        // SOC seed symbols were interned at original build time, so they
        // already exist in the restored folded namespace; re-interning
        // resolves them without creating new symbols.
        engine.reintern_soc_seeds();
        *engine.lock_cursor() = engine.current_cursor();
        restore_span.finish();
        Ok(engine)
    }
}

// -- engine config ----------------------------------------------------------

fn write_config(e: &mut Encoder, cfg: &EngineConfig) {
    e.usizev(cfg.pipeline.fold_level);
    e.usizev(cfg.pipeline.unpopular_threshold);
    e.usizev(cfg.pipeline.rare_ua_threshold);
    sections::write_automation(e, &cfg.automation);
    match &cfg.cc_model {
        CcModel::LanlHeuristic { min_hosts, period_tolerance_secs } => {
            e.u8(0);
            e.usizev(*min_hosts);
            e.varint(*period_tolerance_secs);
        }
        CcModel::Regression { model, scaler } => {
            e.u8(1);
            sections::write_regression_model(e, model);
            sections::write_scaler(e, scaler);
        }
    }
    match &cfg.sim {
        SimScorer::Additive { scorer, threshold, correlation_window_secs } => {
            e.u8(0);
            sections::write_additive(e, scorer);
            e.f64(*threshold);
            e.varint(*correlation_window_secs);
        }
        SimScorer::Regression { model, scaler } => {
            e.u8(1);
            sections::write_regression_model(e, model);
            sections::write_scaler(e, scaler);
        }
    }
    e.usizev(cfg.bp.max_iterations);
    match &cfg.whois {
        None => e.bool(false),
        Some(whois) => {
            e.bool(true);
            sections::write_whois(e, whois);
        }
    }
    e.f64(cfg.whois_defaults.0);
    e.f64(cfg.whois_defaults.1);
    e.usizev(cfg.soc_seed_domains.len());
    for seed in &cfg.soc_seed_domains {
        e.str(seed);
    }
    e.bool(cfg.auto_investigate);
    e.usizev(cfg.parallelism);
    e.usizev(cfg.parallel_threshold);
    e.usizev(cfg.ingest_chunk_records);
    e.opt_varint(cfg.bootstrap_days.map(u64::from));
    e.opt_varint(cfg.retain_days.map(|d| d as u64));
}

fn read_config(d: &mut Decoder<'_>) -> StoreResult<EngineConfig> {
    let pipeline = PipelineConfig {
        fold_level: d.usizev()?,
        unpopular_threshold: d.usizev()?,
        rare_ua_threshold: d.usizev()?,
    };
    let automation = sections::read_automation(d)?;
    let cc_model = match d.u8()? {
        0 => CcModel::LanlHeuristic { min_hosts: d.usizev()?, period_tolerance_secs: d.varint()? },
        1 => CcModel::Regression {
            model: sections::read_regression_model(d)?,
            scaler: sections::read_scaler(d)?,
        },
        b => return Err(StoreError::corrupt(format!("unknown C&C model tag {b}"))),
    };
    if let CcModel::Regression { model, scaler } = &cc_model {
        if scaler.n_features() != model.fit().n_features() {
            return Err(StoreError::corrupt("C&C scaler/model feature count mismatch"));
        }
    }
    let sim = match d.u8()? {
        0 => SimScorer::Additive {
            scorer: sections::read_additive(d)?,
            threshold: d.f64()?,
            correlation_window_secs: d.varint()?,
        },
        1 => {
            let model = sections::read_regression_model(d)?;
            let scaler = sections::read_scaler(d)?;
            if scaler.n_features() != model.fit().n_features() {
                return Err(StoreError::corrupt("similarity scaler/model feature count mismatch"));
            }
            SimScorer::Regression { model, scaler }
        }
        b => return Err(StoreError::corrupt(format!("unknown similarity scorer tag {b}"))),
    };
    let bp = BpConfig { max_iterations: d.usizev()? };
    let whois = if d.bool()? { Some(sections::read_whois(d)?) } else { None };
    let whois_defaults = (d.f64()?, d.f64()?);
    let n = d.seq_len(1)?;
    let mut soc_seed_domains = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        soc_seed_domains.push(d.str()?);
    }
    let auto_investigate = d.bool()?;
    let parallelism = d.usizev()?;
    let parallel_threshold = d.usizev()?;
    let ingest_chunk_records = d.usizev()?;
    let bootstrap_days = match d.opt_varint()? {
        None => None,
        Some(v) => Some(
            u32::try_from(v)
                .map_err(|_| StoreError::corrupt("bootstrap_days override exceeds u32"))?,
        ),
    };
    let retain_days = match d.opt_varint()? {
        None => None,
        Some(v) => {
            Some(usize::try_from(v).map_err(|_| StoreError::corrupt("retain_days exceeds usize"))?)
        }
    };
    Ok(EngineConfig {
        pipeline,
        automation,
        cc_model,
        sim,
        bp,
        whois,
        whois_defaults,
        soc_seed_domains,
        auto_investigate,
        parallelism,
        parallel_threshold,
        ingest_chunk_records,
        bootstrap_days,
        retain_days,
    })
}

// -- day reports ------------------------------------------------------------

fn write_day_report(e: &mut Encoder, report: &DayReport) {
    e.u32v(report.day.index());
    e.bool(report.bootstrap);
    let s = &report.stages;
    e.usizev(s.records_in);
    e.usizev(s.parse_errors);
    e.usizev(s.domains_all);
    e.usizev(s.domains_after_internal_filter);
    e.usizev(s.domains_after_server_filter);
    e.usizev(s.new_destinations);
    e.usizev(s.rare_destinations);
    e.usizev(s.automated_domains);
    e.usizev(s.cc_detections);
    e.usizev(s.bp_iterations);
    e.usizev(s.bp_labeled);
    e.usizev(s.alerts_emitted);
    e.usizev(s.sink_failures);
    // wall_micros is deliberately not part of the format: it is wall-clock
    // measurement noise, not engine state, and persisting it would make
    // otherwise-identical states produce different snapshot bytes.
    sections::write_opt_dns_counts(e, report.dns_counts.as_ref());
    sections::write_opt_proxy_counts(e, report.proxy_counts.as_ref());
    sections::write_opt_norm_counts(e, report.norm_counts.as_ref());
}

fn read_day_report(d: &mut Decoder<'_>) -> StoreResult<DayReport> {
    let day = Day::new(d.u32v()?);
    let bootstrap = d.bool()?;
    let stages = StageCounters {
        records_in: d.usizev()?,
        parse_errors: d.usizev()?,
        domains_all: d.usizev()?,
        domains_after_internal_filter: d.usizev()?,
        domains_after_server_filter: d.usizev()?,
        new_destinations: d.usizev()?,
        rare_destinations: d.usizev()?,
        automated_domains: d.usizev()?,
        cc_detections: d.usizev()?,
        bp_iterations: d.usizev()?,
        bp_labeled: d.usizev()?,
        alerts_emitted: d.usizev()?,
        sink_failures: d.usizev()?,
        wall_micros: 0,
    };
    Ok(DayReport {
        day,
        bootstrap,
        duplicate: false,
        stages,
        dns_counts: sections::read_opt_dns_counts(d)?,
        proxy_counts: sections::read_opt_proxy_counts(d)?,
        norm_counts: sections::read_opt_norm_counts(d)?,
        cc_candidates: Vec::new(),
        alerts: Vec::new(),
        outcome: None,
    })
}

// -- engine helpers ----------------------------------------------------------

impl Engine {
    /// Re-interns the configured SOC seed names into the (restored) folded
    /// namespace; see [`EngineBuilder::restore`].
    pub(crate) fn reintern_soc_seeds(&mut self) {
        self.soc_seed_syms =
            self.cfg.soc_seed_domains.iter().map(|n| self.pipeline.intern_seed(n)).collect();
    }
}
