//! The block/frame layer of the snapshot stream.
//!
//! A store stream is a sequence of self-delimiting **blocks**, each sealed
//! by a CRC-32:
//!
//! ```text
//! block := MAGIC "EBSTORE1" | version varint | kind u8
//!          | section*                  (tag u8 | len varint | payload)
//!          | END tag (0u8) | crc32 (4 bytes LE, over magic..END)
//! ```
//!
//! The first block of a stream is a [`BlockKind::Full`] snapshot; any
//! number of [`BlockKind::DaySegment`] blocks may follow (the incremental
//! `checkpoint_day` path appends them). Sections appear in a fixed order;
//! a missing, reordered, or unknown section is a typed
//! [`StoreError::Corrupt`]. Truncation anywhere inside a block is
//! [`StoreError::Truncated`]; a bit flip anywhere is caught by the CRC at
//! the latest.

use crate::codec::{crc32_finish, crc32_update, Decoder, Encoder, CRC_INIT};
use crate::error::{StoreError, StoreResult};
use std::io::{Read, Write};

/// Magic bytes opening every block.
pub const MAGIC: [u8; 8] = *b"EBSTORE1";

/// Newest snapshot format revision this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// What a block contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// A complete engine snapshot (config + all mutable state).
    Full,
    /// An incremental segment: state appended since the previous block.
    DaySegment,
}

impl BlockKind {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            BlockKind::Full => 1,
            BlockKind::DaySegment => 2,
        }
    }

    pub(crate) fn from_byte(b: u8) -> StoreResult<Self> {
        match b {
            1 => Ok(BlockKind::Full),
            2 => Ok(BlockKind::DaySegment),
            b => Err(StoreError::corrupt(format!("unknown block kind {b:#04x}"))),
        }
    }
}

/// The sections of a block, in their mandatory order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SectionTag {
    /// Engine configuration (full blocks only).
    Config = 1,
    /// Dataset metadata (full blocks only).
    Meta = 2,
    /// Interner contents/deltas (raw, folded, user agents, paths).
    Interners = 3,
    /// Host-mapper contents/delta.
    Hosts = 4,
    /// Cross-day histories (domain profile + user agents).
    History = 5,
    /// Per-day counter reports.
    Reports = 6,
    /// Retained day products (contact indexes).
    Products = 7,
    /// Alert sequence counter.
    Sequence = 8,
}

impl SectionTag {
    /// The section's name (for error contexts).
    pub const fn name(self) -> &'static str {
        match self {
            SectionTag::Config => "config",
            SectionTag::Meta => "meta",
            SectionTag::Interners => "interners",
            SectionTag::Hosts => "hosts",
            SectionTag::History => "history",
            SectionTag::Reports => "reports",
            SectionTag::Products => "products",
            SectionTag::Sequence => "sequence",
        }
    }
}

const END_TAG: u8 = 0;

/// Summary of one written block, returned by `Engine::checkpoint` /
/// `Engine::checkpoint_day`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Whether a full snapshot or an incremental segment was written.
    pub kind: BlockKind,
    /// Format revision written.
    pub format_version: u16,
    /// Total bytes of the block, including magic and checksum.
    pub bytes: u64,
    /// The block's CRC-32.
    pub checksum: u32,
    /// Ingested-day reports persisted in this block.
    pub days: usize,
    /// Retained day indexes persisted in this block.
    pub retained_days: usize,
}

// -- writing ----------------------------------------------------------------

/// Internal buffering span of a [`BlockWriter`]: bytes accumulate here and
/// reach the checksum and the sink in runs of this size, so many small
/// header/payload writes cost one `write_all` and one wide CRC pass instead
/// of a syscall-plus-CRC-setup each.
const WRITE_SPAN: usize = 256 * 1024;

/// Streams one block to a writer, checksumming as it goes.
///
/// Writes are staged in an internal 256 KiB (`WRITE_SPAN`) buffer; payloads at
/// least that large bypass the buffer and stream straight through. The CRC
/// is folded over each flushed span, not per call, which keeps the 8-at-a-
/// time slicing kernel on long runs. Byte stream and checksum are identical
/// to the unbuffered writer's.
#[derive(Debug)]
pub struct BlockWriter<'w, W: Write> {
    out: &'w mut W,
    crc: u32,
    bytes: u64,
    buf: Vec<u8>,
}

impl<'w, W: Write> BlockWriter<'w, W> {
    /// Opens a block: writes magic, format version, and kind.
    pub fn begin(out: &'w mut W, kind: BlockKind) -> StoreResult<Self> {
        // The buffer grows on demand: small blocks (manifests, day
        // segments) never pay for the full span.
        let mut w = BlockWriter { out, crc: CRC_INIT, bytes: 0, buf: Vec::new() };
        w.write(&MAGIC)?;
        let mut header = Encoder::new();
        header.varint(FORMAT_VERSION as u64);
        header.u8(kind.to_byte());
        w.write(&header.into_bytes())?;
        Ok(w)
    }

    fn write(&mut self, bytes: &[u8]) -> StoreResult<()> {
        self.bytes += bytes.len() as u64;
        if bytes.len() >= WRITE_SPAN {
            // Large payload: drain the staging buffer to preserve byte
            // order, then checksum and emit the payload in one pass.
            self.flush_span()?;
            self.crc = crc32_update(self.crc, bytes);
            self.out.write_all(bytes)?;
        } else {
            self.buf.extend_from_slice(bytes);
            if self.buf.len() >= WRITE_SPAN {
                self.flush_span()?;
            }
        }
        Ok(())
    }

    fn flush_span(&mut self) -> StoreResult<()> {
        if !self.buf.is_empty() {
            self.crc = crc32_update(self.crc, &self.buf);
            self.out.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Writes one section frame from an encoded payload.
    pub fn section(&mut self, tag: SectionTag, payload: Encoder) -> StoreResult<()> {
        let payload = payload.into_bytes();
        let mut header = Encoder::new();
        header.u8(tag as u8);
        header.varint(payload.len() as u64);
        self.write(&header.into_bytes())?;
        self.write(&payload)
    }

    /// Seals the block: end marker plus CRC-32. Returns `(bytes, crc)`.
    pub fn finish(mut self) -> StoreResult<(u64, u32)> {
        self.write(&[END_TAG])?;
        self.flush_span()?;
        let crc = crc32_finish(self.crc);
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.flush()?;
        Ok((self.bytes + 4, crc))
    }
}

// -- reading ----------------------------------------------------------------

/// Reads one block from a reader, verifying structure and checksum.
#[derive(Debug)]
pub struct BlockReader<'r, R: Read> {
    input: &'r mut R,
    crc: u32,
    kind: BlockKind,
}

impl<'r, R: Read> BlockReader<'r, R> {
    /// Opens the next block. Returns `Ok(None)` on a clean end of stream
    /// (zero bytes before the next magic).
    pub fn next_block(input: &'r mut R) -> StoreResult<Option<Self>> {
        let mut magic = [0u8; 8];
        let mut filled = 0;
        while filled < magic.len() {
            match input.read(&mut magic[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(StoreError::Truncated { context: "block magic" }),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut r =
            BlockReader { input, crc: crc32_update(CRC_INIT, &magic), kind: BlockKind::Full };
        let version = r.read_varint("format version")?;
        if version > FORMAT_VERSION as u64 {
            return Err(StoreError::UnsupportedVersion {
                found: version.min(u16::MAX as u64) as u16,
                supported: FORMAT_VERSION,
            });
        }
        let kind = BlockKind::from_byte(r.read_byte("block kind")?)?;
        r.kind = kind;
        Ok(Some(r))
    }

    /// What this block contains.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    fn read_exact(&mut self, buf: &mut [u8], context: &'static str) -> StoreResult<()> {
        self.input.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { context }
            } else {
                StoreError::Io(e)
            }
        })?;
        self.crc = crc32_update(self.crc, buf);
        Ok(())
    }

    fn read_byte(&mut self, context: &'static str) -> StoreResult<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b, context)?;
        Ok(b[0])
    }

    fn read_varint(&mut self, context: &'static str) -> StoreResult<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.read_byte(context)?;
            let low = (byte & 0x7F) as u64;
            if shift == 63 && low > 1 {
                break;
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(StoreError::corrupt(format!("varint overflows u64 while reading {context}")))
    }

    /// Reads the next section, which must carry `expected`'s tag, returning
    /// its payload. The payload is read in bounded chunks so a corrupted
    /// length cannot drive one huge allocation.
    pub fn section(&mut self, expected: SectionTag) -> StoreResult<Vec<u8>> {
        let tag = self.read_byte("section tag")?;
        if tag != expected as u8 {
            return Err(StoreError::corrupt(format!(
                "expected section `{}` (tag {}), found tag {tag}",
                expected.name(),
                expected as u8
            )));
        }
        let len = self.read_varint("section length")?;
        let len = usize::try_from(len)
            .map_err(|_| StoreError::corrupt(format!("section length {len} exceeds usize")))?;
        let mut payload = Vec::new();
        let mut left = len;
        let mut chunk = [0u8; 64 * 1024];
        while left > 0 {
            let n = left.min(chunk.len());
            self.read_exact(&mut chunk[..n], expected.name())?;
            payload.extend_from_slice(&chunk[..n]);
            left -= n;
        }
        Ok(payload)
    }

    /// Reads the end marker and verifies the block CRC.
    pub fn finish(mut self) -> StoreResult<()> {
        let tag = self.read_byte("end marker")?;
        if tag != END_TAG {
            return Err(StoreError::corrupt(format!("expected end marker, found tag {tag}")));
        }
        let computed = crc32_finish(self.crc);
        let mut stored = [0u8; 4];
        self.input.read_exact(&mut stored).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { context: "block checksum" }
            } else {
                StoreError::Io(e)
            }
        })?;
        let stored = u32::from_le_bytes(stored);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { expected: stored, found: computed });
        }
        Ok(())
    }
}

/// Convenience: decodes a section payload with its name attached to error
/// contexts.
pub fn decoder(payload: &[u8], tag: SectionTag) -> Decoder<'_> {
    Decoder::new(payload, tag.name())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_block() -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = BlockWriter::begin(&mut out, BlockKind::Full).unwrap();
        let mut e = Encoder::new();
        e.str("payload");
        w.section(SectionTag::Config, e).unwrap();
        w.finish().unwrap();
        out
    }

    #[test]
    fn block_roundtrips() {
        let bytes = tiny_block();
        let mut cursor = std::io::Cursor::new(bytes);
        let mut r = BlockReader::next_block(&mut cursor).unwrap().expect("one block");
        assert_eq!(r.kind(), BlockKind::Full);
        let payload = r.section(SectionTag::Config).unwrap();
        let mut d = decoder(&payload, SectionTag::Config);
        assert_eq!(d.str().unwrap(), "payload");
        d.finish().unwrap();
        r.finish().unwrap();
        assert!(BlockReader::next_block(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = tiny_block();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5A;
            let mut cursor = std::io::Cursor::new(bad);
            let outcome = (|| -> StoreResult<()> {
                let Some(mut r) = BlockReader::next_block(&mut cursor)? else {
                    return Err(StoreError::corrupt("no block"));
                };
                let payload = r.section(SectionTag::Config)?;
                let mut d = decoder(&payload, SectionTag::Config);
                let _ = d.str()?;
                d.finish()?;
                r.finish()
            })();
            assert!(outcome.is_err(), "flip at byte {i} must be detected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = tiny_block();
        for cut in 0..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            let outcome = (|| -> StoreResult<bool> {
                let Some(mut r) = BlockReader::next_block(&mut cursor)? else {
                    return Ok(false);
                };
                let payload = r.section(SectionTag::Config)?;
                let mut d = decoder(&payload, SectionTag::Config);
                let _ = d.str()?;
                d.finish()?;
                r.finish()?;
                Ok(true)
            })();
            match outcome {
                Ok(false) if cut == 0 => {} // empty stream is a clean EOF
                Ok(_) => panic!("truncation at {cut} must not restore"),
                Err(StoreError::Truncated { .. }) => {}
                Err(other) => panic!("truncation at {cut}: unexpected error {other}"),
            }
        }
    }

    #[test]
    fn wrong_magic_and_future_version_are_typed() {
        let mut bytes = tiny_block();
        bytes[0] = b'X';
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(BlockReader::next_block(&mut cursor), Err(StoreError::BadMagic)));

        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(99); // version 99
        let mut cursor = std::io::Cursor::new(out);
        assert!(matches!(
            BlockReader::next_block(&mut cursor),
            Err(StoreError::UnsupportedVersion { found: 99, supported: FORMAT_VERSION })
        ));
    }
}
