//! Daily pipeline orchestration: the "operation" loop of §III-E.
//!
//! [`DailyPipeline`] owns the cross-day state — domain/UA histories, the
//! fold table, the rare sieve — and turns each raw day batch into a
//! [`DayProduct`]: the reduced contacts indexed for detection, plus every
//! per-step counter the Fig. 2 reproduction needs. Bootstrap days only feed
//! the histories; operation days are compared against the profiles *before*
//! the profiles are updated.

use crate::context::DayContext;
use earlybird_intel::WhoisRegistry;
use earlybird_logmodel::{
    DatasetMeta, Day, DhcpLog, DnsDayLog, DomainInterner, DomainSym, Ipv4, ProxyDayLog,
};
use earlybird_pipeline::{
    normalize_proxy_day, reduce_dns_day, reduce_proxy_day, DayIndex, DnsReductionCounts,
    DomainHistory, FoldTable, NormalizationCounts, ProxyReductionCounts, RareSieve,
    ReductionConfig, UaHistory,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Domain fold level (2 for enterprise names, 3 for anonymized LANL).
    pub fold_level: usize,
    /// Rare-destination unpopularity threshold (10 hosts in the paper).
    pub unpopular_threshold: usize,
    /// Rare-UA host threshold (10 hosts in the paper).
    pub rare_ua_threshold: usize,
}

impl PipelineConfig {
    /// Enterprise (AC) configuration: fold to second level.
    pub fn enterprise() -> Self {
        PipelineConfig { fold_level: 2, unpopular_threshold: 10, rare_ua_threshold: 10 }
    }

    /// LANL configuration: fold anonymized names to third level.
    pub fn lanl() -> Self {
        PipelineConfig { fold_level: 3, unpopular_threshold: 10, rare_ua_threshold: 10 }
    }
}

/// The per-day output of the pipeline.
#[derive(Debug)]
pub struct DayProduct {
    /// The processed day.
    pub day: Day,
    /// Index over the day's reduced contacts.
    pub index: DayIndex,
    /// Folded-name interner (shared with the pipeline).
    pub folded: Arc<DomainInterner>,
    /// DNS reduction counters, for DNS days.
    pub dns_counts: Option<DnsReductionCounts>,
    /// Proxy reduction counters, for proxy days.
    pub proxy_counts: Option<ProxyReductionCounts>,
    /// Normalization counters, for proxy days.
    pub norm_counts: Option<NormalizationCounts>,
}

impl DayProduct {
    /// Builds the detector-facing context for this day.
    pub fn context<'a>(
        &'a self,
        whois: Option<&'a WhoisRegistry>,
        whois_defaults: (f64, f64),
    ) -> DayContext<'a> {
        DayContext {
            day: self.day,
            index: &self.index,
            folded: &self.folded,
            whois,
            whois_defaults,
        }
    }
}

/// Cross-day pipeline state.
///
/// Internal plumbing: callers should drive the daily cycle through
/// `earlybird-engine`'s `Engine::ingest_day` instead of calling the
/// `bootstrap_*` / `process_*` methods directly.
#[derive(Debug)]
pub struct DailyPipeline {
    cfg: PipelineConfig,
    fold: FoldTable,
    history: DomainHistory,
    ua_history: UaHistory,
    sieve: RareSieve,
    ip_literal_cache: Mutex<HashMap<DomainSym, bool>>,
}

impl DailyPipeline {
    /// Creates a pipeline over the dataset's raw-name interner.
    pub fn new(raw: Arc<DomainInterner>, cfg: PipelineConfig) -> Self {
        DailyPipeline {
            cfg,
            fold: FoldTable::new(raw, cfg.fold_level),
            history: DomainHistory::new(),
            ua_history: UaHistory::new(cfg.rare_ua_threshold),
            sieve: RareSieve::new(cfg.unpopular_threshold),
            ip_literal_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The folded-name interner (shared with every [`DayProduct`]).
    pub fn folded_interner(&self) -> &Arc<DomainInterner> {
        self.fold.folded_interner()
    }

    /// Interns a seed domain name (IOC) into the folded namespace.
    pub fn intern_seed(&self, name: &str) -> DomainSym {
        self.fold.intern_folded(name)
    }

    /// The destination history (for inspection).
    pub fn history(&self) -> &DomainHistory {
        &self.history
    }

    /// The UA history (for inspection).
    pub fn ua_history(&self) -> &UaHistory {
        &self.ua_history
    }

    /// Ingests a bootstrap DNS day: reduction + history update, no
    /// detection.
    pub fn bootstrap_dns_day(&mut self, day: &DnsDayLog, meta: &DatasetMeta) -> DnsReductionCounts {
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_dns_day(day, meta, &mut self.fold, &cfg);
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        counts
    }

    /// Ingests a bootstrap proxy day.
    pub fn bootstrap_proxy_day(
        &mut self,
        day: &ProxyDayLog,
        dhcp: &DhcpLog,
        meta: &DatasetMeta,
    ) -> (NormalizationCounts, ProxyReductionCounts) {
        let (normalized, norm_counts) =
            normalize_proxy_day(day, dhcp, |r| self.is_ip_literal(r.domain));
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_proxy_day(&normalized, meta, &mut self.fold, &cfg);
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        (norm_counts, counts)
    }

    /// Processes an operation DNS day: reduce, extract rares against the
    /// *pre-update* history, index, then update the profiles.
    pub fn process_dns_day(&mut self, day: &DnsDayLog, meta: &DatasetMeta) -> DayProduct {
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_dns_day(day, meta, &mut self.fold, &cfg);
        let rare = self.sieve.extract(&contacts, &self.history);
        let index = DayIndex::build(day.day, &contacts, rare, Some(&self.ua_history));
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        DayProduct {
            day: day.day,
            index,
            folded: Arc::clone(self.fold.folded_interner()),
            dns_counts: Some(counts),
            proxy_counts: None,
            norm_counts: None,
        }
    }

    /// Processes an operation proxy day.
    pub fn process_proxy_day(
        &mut self,
        day: &ProxyDayLog,
        dhcp: &DhcpLog,
        meta: &DatasetMeta,
    ) -> DayProduct {
        let (normalized, norm_counts) =
            normalize_proxy_day(day, dhcp, |r| self.is_ip_literal(r.domain));
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_proxy_day(&normalized, meta, &mut self.fold, &cfg);
        let rare = self.sieve.extract(&contacts, &self.history);
        let index = DayIndex::build(day.day, &contacts, rare, Some(&self.ua_history));
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        DayProduct {
            day: day.day,
            index,
            folded: Arc::clone(self.fold.folded_interner()),
            dns_counts: None,
            proxy_counts: Some(counts),
            norm_counts: Some(norm_counts),
        }
    }

    /// Whether a raw destination "domain" is an IP literal (§IV-A drops
    /// those); memoized per symbol.
    fn is_ip_literal(&self, raw: DomainSym) -> bool {
        let cache = self.ip_literal_cache.lock().expect("ip-literal cache poisoned");
        if let Some(&v) = cache.get(&raw) {
            return v;
        }
        drop(cache);
        let name = self.fold.raw_interner().resolve(raw);
        let v = name.parse::<Ipv4>().is_ok();
        self.ip_literal_cache.lock().expect("ip-literal cache poisoned").insert(raw, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_synthgen::lanl::{LanlConfig, LanlGenerator};

    #[test]
    fn bootstrap_then_operation_classifies_rares() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let meta = &challenge.dataset.meta;
        let mut pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());

        for day in &challenge.dataset.days[..5] {
            pipeline.bootstrap_dns_day(day, meta);
        }
        assert!(pipeline.history().len() > 50, "history populated");

        let product = pipeline.process_dns_day(&challenge.dataset.days[5], meta);
        assert!(product.index.rare_count() > 0, "fresh domains appear daily");
        let counts = product.dns_counts.unwrap();
        assert!(counts.domains_all >= counts.domains_after_internal_filter);
        assert!(counts.domains_after_internal_filter >= counts.domains_after_server_filter);
        assert!(product.index.rare_count() <= counts.domains_after_server_filter);
    }

    #[test]
    fn campaign_domains_are_rare_on_their_day() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let meta = &challenge.dataset.meta;
        let mut pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());

        let campaign = &challenge.campaigns[0];
        for day in &challenge.dataset.days {
            if day.day < campaign.day {
                pipeline.bootstrap_dns_day(day, meta);
            }
        }
        let product = pipeline.process_dns_day(challenge.dataset.day(campaign.day).unwrap(), meta);
        for name in campaign.answer_domains() {
            let sym = pipeline.folded_interner().get(name).expect("campaign domain indexed");
            assert!(product.index.is_rare(sym), "{name} must be rare on its campaign day");
        }
    }

    #[test]
    fn context_carries_whois_defaults() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let meta = &challenge.dataset.meta;
        let mut pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
        let product = pipeline.process_dns_day(&challenge.dataset.days[0], meta);
        let ctx = product.context(None, (123.0, 456.0));
        let any = product.index.rare_domains().next().expect("some rare domain");
        assert_eq!(ctx.whois_features(any), (123.0, 456.0));
    }

    #[test]
    fn seed_interning_folds() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
        let a = pipeline.intern_seed("deep.sub.rainbow.c3");
        let b = pipeline.intern_seed("sub.rainbow.c3");
        assert_eq!(a, b, "seeds fold to the pipeline's level");
    }
}
