//! Crash-during-lifecycle fault injection: kill the store at **every**
//! backend mutation point of the daily persist cycle — staged uploads,
//! finalizes, manifest swaps, GC deletions — and prove `StoreDir::open`
//! always recovers a valid chain with no acknowledged day lost, on every
//! [`ObjectStore`] backend (`{localfs, mem, s3lite}`).
//!
//! The [`FaultInjector`] counts backend mutations through a
//! `FaultedStore` wrapper and fails the N-th (and, like a dead process,
//! every one after it). The suites below enumerate N from 0 upward until
//! a run completes with no fault fired, so every mutation point in the
//! schedule is killed exactly once — the same sweep against all three
//! backends, which is exactly what moving fault injection off the
//! filesystem and onto the backend boundary buys.

// Each integration-test crate uses a subset of the harness; the unused
// remainder is not a defect.
#[path = "support/backends.rs"]
#[allow(dead_code)]
mod support;

use earlybird::engine::{
    compact_store, compact_store_tiered, CompactionTrigger, DayBatch, Engine, EngineBuilder,
    FaultInjector, LifecycleConfig, Persistence, RetentionPolicy, S3LiteBackend, SnapshotPolicy,
    StageCounters, StoreDir, StoreError,
};
use earlybird::logmodel::Day;
use earlybird::synthgen::lanl::{LanlChallenge, LanlConfig, LanlGenerator};
use earlybird_engine::CollectingSink;
use std::collections::BTreeSet;
use std::sync::Arc;
use support::Backend;

fn challenge() -> LanlChallenge {
    LanlGenerator::new(LanlConfig::tiny()).generate()
}

fn engine_for(challenge: &LanlChallenge) -> Engine {
    EngineBuilder::lanl()
        .soc_seed("ioc.planted.c3")
        .auto_investigate(true)
        .sink(CollectingSink::new())
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config")
}

/// Reference counters for every day of the suite, from an engine that
/// never persists at all.
fn reference_counters(challenge: &LanlChallenge) -> Vec<StageCounters> {
    let mut engine = engine_for(challenge);
    challenge.dataset.days.iter().map(|day| engine.ingest_day(DayBatch::Dns(day)).stages).collect()
}

/// After a simulated crash, reopening the store must yield a chain that
/// restores cleanly and still holds every acknowledged day with the exact
/// counters of an uninterrupted run. Returns the restored engine (`None`
/// when the crash predates the first durable block, which is only
/// legitimate while nothing was acknowledged).
fn assert_no_acked_loss(
    backend: &Backend,
    cfg: LifecycleConfig,
    acked: &BTreeSet<Day>,
    reference: &[StageCounters],
    context: &str,
) -> Option<Engine> {
    let dir = backend
        .open(cfg)
        .unwrap_or_else(|e| panic!("{context}: store must reopen after the crash: {e}"));
    if dir.is_empty() {
        assert!(acked.is_empty(), "{context}: acked days {acked:?} but the chain is empty");
        return None;
    }
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let restored = store
        .restore(EngineBuilder::lanl())
        .unwrap_or_else(|e| panic!("{context}: recovered chain must restore: {e}"));
    let days: BTreeSet<Day> = restored.reports().map(|r| r.day).collect();
    for day in acked {
        assert!(days.contains(day), "{context}: acknowledged {day:?} lost; chain holds {days:?}");
    }
    for report in restored.reports() {
        assert!(
            report.stages.deterministic_eq(&reference[report.day.index() as usize]),
            "{context}: counters for {:?}",
            report.day
        );
    }
    Some(restored)
}

/// The daily cycle under fire, on every backend: first persist writes the
/// full block, later ones append segments, and the `max_segments = 2`
/// trigger forces repeated compaction passes (with retention GC) — so the
/// enumerated crash points cover upload begin, staged writes, finalize,
/// the conditional manifest swap, and superseded-chain deletion, in every
/// phase.
#[test]
fn crash_at_every_op_of_the_daily_cycle_loses_no_acked_day() {
    let challenge = challenge();
    let reference = reference_counters(&challenge);
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let days = &challenge.dataset.days[..boot + 6];
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger {
            max_segments: Some(2),
            max_segment_bytes: None,
            fold_segments: None,
        },
        retention: RetentionPolicy { retain_days: Some(3) },
    };

    for template in Backend::matrix("crash-daily") {
        let mut crash_points = 0u64;
        for fault_at in 0u64.. {
            let backend = template.fresh();
            let mut dir = backend.create(cfg).expect("create store");
            let injector = FaultInjector::new();
            dir.set_fault_injector(injector.clone());
            injector.arm(fault_at);
            let store = Persistence::new(dir, SnapshotPolicy::default());

            let mut engine = engine_for(&challenge);
            let mut acked: BTreeSet<Day> = BTreeSet::new();
            let mut crashed = false;
            for day in days {
                engine.ingest_day(DayBatch::Dns(day));
                match store.commit(&engine).and_then(|handle| handle.wait()) {
                    Ok(_) => {
                        acked.insert(day.day);
                    }
                    Err(e) => {
                        assert!(
                            matches!(e, StoreError::Io(_)),
                            "{}: fault {fault_at}: only the injected fault may fail the \
                             cycle: {e}",
                            backend.name()
                        );
                        crashed = true;
                        break;
                    }
                }
            }
            let gc_failures = store.store().gc_failures();
            // The dead process goes away; recovery sees only the store.
            drop(store);
            drop(engine);

            let context = format!("{} fault at op {fault_at}", backend.name());
            let restored = assert_no_acked_loss(&backend, cfg, &acked, &reference, &context);
            drop(restored);
            backend.cleanup();

            if !crashed {
                if !injector.crashed() {
                    crash_points = fault_at;
                    break;
                }
                // The fault fired yet every day was acknowledged: the only
                // mutation allowed to fail without failing the cycle is a
                // best-effort GC delete, and it must have been counted.
                assert!(
                    gc_failures > 0,
                    "{context}: fault fired without an error or a GC-failure count"
                );
            }
        }
        // The schedule above crosses full-commit, segment-commit, and
        // several compaction passes; that is a lot of distinct mutation
        // points.
        assert!(
            crash_points >= 25,
            "{}: expected a deep op schedule, covered {crash_points} points",
            template.name()
        );
    }
}

/// The same kill-sweep with commits on the background worker: a day is
/// acknowledged only after its [`CommitHandle`] resolves, so whatever op
/// the fault lands on — including ops of a commit queued behind others —
/// no acknowledged day may be lost. After the first failure the handle
/// poisons itself, so later commits fail typed instead of building on a
/// chain that never got the frozen bytes.
///
/// [`CommitHandle`]: earlybird::engine::CommitHandle
#[test]
fn crash_at_every_op_of_background_commits_loses_no_acked_day() {
    let challenge = challenge();
    let reference = reference_counters(&challenge);
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let days = &challenge.dataset.days[..boot + 5];
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger {
            max_segments: Some(2),
            max_segment_bytes: None,
            fold_segments: None,
        },
        retention: RetentionPolicy { retain_days: Some(3) },
    };

    for template in Backend::matrix("crash-background") {
        let mut crash_points = 0u64;
        for fault_at in 0u64.. {
            let backend = template.fresh();
            let mut dir = backend.create(cfg).expect("create store");
            let injector = FaultInjector::new();
            dir.set_fault_injector(injector.clone());
            injector.arm(fault_at);
            let store = Persistence::new(dir, SnapshotPolicy::default().background());

            let mut engine = engine_for(&challenge);
            let mut acked: BTreeSet<Day> = BTreeSet::new();
            let mut crashed = false;
            for day in days {
                engine.ingest_day(DayBatch::Dns(day));
                match store.commit(&engine).and_then(|handle| handle.wait()) {
                    Ok(_) => {
                        acked.insert(day.day);
                    }
                    Err(e) => {
                        assert!(
                            matches!(e, StoreError::Io(_)),
                            "{}: fault {fault_at}: only the injected fault may fail the \
                             cycle: {e}",
                            backend.name()
                        );
                        // A block-side failure poisons the handle: later
                        // commits are refused typed instead of landing a
                        // delta on a chain that never got these bytes.
                        // (A compaction-side failure leaves it usable.)
                        if store.poisoned().is_some() {
                            assert!(
                                matches!(
                                    store.commit(&engine),
                                    Err(StoreError::PersistencePoisoned { .. })
                                ),
                                "{}: fault {fault_at}: poisoned handle must refuse commits",
                                backend.name()
                            );
                        }
                        crashed = true;
                        break;
                    }
                }
            }
            let gc_failures = store.store().gc_failures();
            // The dead process goes away; recovery sees only the store.
            drop(store);
            drop(engine);

            let context = format!("{} background fault at op {fault_at}", backend.name());
            let restored = assert_no_acked_loss(&backend, cfg, &acked, &reference, &context);
            drop(restored);
            backend.cleanup();

            if !crashed {
                if !injector.crashed() {
                    crash_points = fault_at;
                    break;
                }
                assert!(
                    gc_failures > 0,
                    "{context}: fault fired without an error or a GC-failure count"
                );
            }
        }
        assert!(
            crash_points >= 20,
            "{}: expected a deep background op schedule, covered {crash_points} points",
            template.name()
        );
    }
}

/// Compaction in isolation, on every backend: build a stable chain once,
/// then crash an explicit `compact_store` at every op. Afterwards the
/// store must hold either the old chain or the new block — never a torn
/// store — with all days intact, and a later un-faulted compaction must
/// succeed.
#[test]
fn crash_at_every_op_of_compaction_leaves_old_or_new_chain() {
    let challenge = challenge();
    let reference = reference_counters(&challenge);
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let split = boot + 4;
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy { retain_days: Some(2) },
    };

    for template in Backend::matrix("crash-compact-master") {
        // The chain every iteration starts from: full + segments.
        let master = template.fresh();
        {
            let dir = master.create(cfg).expect("create store");
            let store = Persistence::new(dir, SnapshotPolicy::default());
            let mut engine = engine_for(&challenge);
            for day in &challenge.dataset.days[..split] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("daily persist");
            }
            assert!(
                store.store().segment_count() >= 3,
                "chain long enough to make compaction interesting"
            );
        }
        let acked: BTreeSet<Day> = (0..split as u32).map(Day::new).collect();

        for fault_at in 0u64.. {
            let backend = master.fork_copy("crash-compact");
            let mut dir = backend.open(cfg).expect("open the copied chain");
            let entries_before = dir.entries().len();
            let injector = FaultInjector::new();
            dir.set_fault_injector(injector.clone());
            injector.arm(fault_at);
            let outcome = compact_store(&mut dir);
            let crashed = outcome.is_err();
            match &outcome {
                Err(e) => assert!(
                    matches!(e, StoreError::Io(_)),
                    "fault {fault_at}: unexpected error {e}"
                ),
                // A fault that fired without failing the pass can only
                // have landed on a best-effort GC delete — counted, never
                // raised.
                Ok(report) if injector.crashed() => assert!(
                    report.gc_failures > 0,
                    "fault {fault_at}: fault fired without an error or a GC-failure count"
                ),
                Ok(_) => {}
            }
            drop(dir);

            let context = format!("{} compaction fault at op {fault_at}", backend.name());
            let restored = assert_no_acked_loss(&backend, cfg, &acked, &reference, &context);
            drop(restored);

            // Old chain or new block, never something in between — and the
            // recovered store always accepts a clean compaction.
            let mut dir = backend.open(cfg).expect("reopen");
            let entries = dir.entries().len();
            assert!(
                entries == entries_before || entries == 1,
                "{context}: chain must be the old one ({entries_before} entries) or the \
                 compacted one (1 entry), found {entries}"
            );
            let report = compact_store(&mut dir).expect("clean compaction after recovery");
            assert_eq!(dir.entries().len(), 1, "{context}: recovered store compacts fully");
            assert!(report.bytes_after > 0);
            backend.cleanup();

            if !crashed && !injector.crashed() {
                assert!(
                    fault_at >= 5,
                    "compaction has several mutation points, covered {fault_at}"
                );
                break;
            }
        }
        master.cleanup();
    }
}

/// The tiered variant: crash a bounded `compact_store_tiered(_, 2)` pass
/// at every op. The store must afterwards hold either the old chain or
/// the partially-folded one (`entries_before - 2`: the full plus the two
/// oldest segments replaced by one new full) — never a torn store — the
/// pass must replay at most `1 + fold` blocks, and every acked day must
/// survive on all three backends.
#[test]
fn crash_at_every_op_of_tiered_compaction_leaves_old_or_folded_chain() {
    const FOLD: usize = 2;
    let challenge = challenge();
    let reference = reference_counters(&challenge);
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let split = boot + 4;
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy { retain_days: Some(2) },
    };

    for template in Backend::matrix("crash-tiered-master") {
        let master = template.fresh();
        {
            let dir = master.create(cfg).expect("create store");
            let store = Persistence::new(dir, SnapshotPolicy::default());
            let mut engine = engine_for(&challenge);
            for day in &challenge.dataset.days[..split] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("daily persist");
            }
            assert!(store.store().segment_count() > FOLD, "a tail must survive the fold");
        }
        let acked: BTreeSet<Day> = (0..split as u32).map(Day::new).collect();

        for fault_at in 0u64.. {
            let backend = master.fork_copy("crash-tiered");
            let mut dir = backend.open(cfg).expect("open the copied chain");
            let entries_before = dir.entries().len();
            let injector = FaultInjector::new();
            dir.set_fault_injector(injector.clone());
            injector.arm(fault_at);
            let outcome = compact_store_tiered(&mut dir, FOLD);
            let crashed = outcome.is_err();
            match &outcome {
                Err(e) => assert!(
                    matches!(e, StoreError::Io(_)),
                    "fault {fault_at}: unexpected error {e}"
                ),
                Ok(report) => {
                    assert!(
                        report.segments_replayed <= 1 + FOLD,
                        "fault {fault_at}: tiered pass replayed {} blocks, bound is {}",
                        report.segments_replayed,
                        1 + FOLD
                    );
                    assert_eq!(report.segments_folded, FOLD, "fault {fault_at}");
                    if injector.crashed() {
                        assert!(
                            report.gc_failures > 0,
                            "fault {fault_at}: fault fired without an error or a GC count"
                        );
                    }
                }
            }
            drop(dir);

            let context = format!("{} tiered fault at op {fault_at}", backend.name());
            let restored = assert_no_acked_loss(&backend, cfg, &acked, &reference, &context);
            drop(restored);

            // Old chain or partially-folded chain, never something torn —
            // and the recovered store still accepts a clean tiered pass.
            let mut dir = backend.open(cfg).expect("reopen");
            let entries = dir.entries().len();
            assert!(
                entries == entries_before || entries == entries_before - FOLD,
                "{context}: chain must be the old one ({entries_before} entries) or the \
                 folded one ({} entries), found {entries}",
                entries_before - FOLD
            );
            let report = compact_store_tiered(&mut dir, FOLD).expect("clean fold after recovery");
            assert!(report.segments_replayed <= 1 + FOLD, "{context}: bounded replay");
            assert_eq!(dir.entries().len(), entries - FOLD, "{context}: fold shortens the chain");
            backend.cleanup();

            if !crashed && !injector.crashed() {
                assert!(fault_at >= 5, "tiered compaction has several ops, covered {fault_at}");
                break;
            }
        }
        master.cleanup();
    }
}

/// An abandoned pending block (crash between `begin` and commit) never
/// becomes part of the chain on any backend. What residue it leaves is the
/// backend's business: a torn `.tmp` file quarantined at the next open
/// (localfs), nothing service-side (mem stages client-side), or a staged
/// multipart upload awaiting the reaper (s3lite).
#[test]
fn abandoned_pending_blocks_are_quarantined() {
    let challenge = challenge();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;
    let cfg = LifecycleConfig::default();

    for template in Backend::matrix("crash-abandoned") {
        let backend = template.fresh();
        let store = {
            let dir = backend.create(cfg).expect("create store");
            Persistence::new(dir, SnapshotPolicy::default())
        };
        let mut engine = engine_for(&challenge);
        for day in &challenge.dataset.days[..split] {
            engine.ingest_day(DayBatch::Dns(day));
            store.commit(&engine).expect("freeze").wait().expect("daily persist");
        }
        // Begin a block and walk away mid-write — the staged upload is
        // abandoned.
        {
            let dir = store.store();
            let mut pending = dir.begin(earlybird::store::BlockKind::DaySegment).expect("begin");
            use std::io::Write as _;
            pending.write_all(b"EBSTORE1 torn half-written segment").unwrap();
            drop(pending);
        }
        drop(store);

        let dir = backend.open(cfg).expect("reopen");
        let expected_quarantined = match &backend {
            Backend::LocalFs(_) => 1,                  // the torn .tmp file
            Backend::Mem(_) | Backend::S3Lite(_) => 0, // staging is invisible
        };
        assert_eq!(
            dir.quarantined().len(),
            expected_quarantined,
            "{}: quarantine sweep of the abandoned upload: {:?}",
            backend.name(),
            dir.quarantined()
        );
        let reopened = Persistence::new(dir, SnapshotPolicy::default());
        let restored = reopened.restore(EngineBuilder::lanl()).expect("chain unaffected");
        assert_eq!(restored.reports().count(), split);
        backend.cleanup();
    }
}

/// The s3lite acceptance case: a crash mid-multipart-upload leaves parts
/// in the staging area — never a visible object — the chain stays exactly
/// old-or-new, and the staging-area reaper (the bucket-lifecycle-rule
/// stand-in) clears the residue.
#[test]
fn s3lite_aborted_multipart_upload_stays_invisible_and_is_reaped() {
    let challenge = challenge();
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy::default(),
    };
    // A small part size so even tiny test blocks span several parts.
    let service = S3LiteBackend::with_part_size(512);
    let dir = StoreDir::create_with(service.clone(), cfg).expect("create store");
    let store = Persistence::new(dir, SnapshotPolicy::default());

    let mut engine = engine_for(&challenge);
    for day in &challenge.dataset.days[..boot + 2] {
        engine.ingest_day(DayBatch::Dns(day));
        store.commit(&engine).expect("freeze").wait().expect("daily persist");
    }
    let committed = store.store().entries().len();
    assert_eq!(service.staged_uploads(), 0, "clean cycles leave no staged uploads");

    // Kill the next day's persist at the finalize: by then the upload's
    // parts are staged with the service, but completion never happens.
    let injector = FaultInjector::new();
    store.store().set_fault_injector(injector.clone());
    injector.arm(2); // begin = 0, buffered write = 1, finalize = 2
    let day = &challenge.dataset.days[boot + 2];
    engine.ingest_day(DayBatch::Dns(day));
    let err =
        store.commit(&engine).and_then(|handle| handle.wait()).expect_err("finalize must crash");
    assert!(matches!(err, StoreError::Io(_)), "{err}");
    assert!(injector.crashed());
    drop(store);
    drop(engine);

    // The aborted upload lingers in staging, invisible to the store.
    assert_eq!(service.staged_uploads(), 1, "aborted multipart upload stays staged");
    let dir = StoreDir::open_with(service.clone(), cfg).expect("reopen");
    assert_eq!(dir.entries().len(), committed, "chain is exactly the old one");
    assert!(dir.quarantined().is_empty(), "staging residue is not in the live namespace");
    let reopened = Persistence::new(dir, SnapshotPolicy::default());
    let restored = reopened.restore(EngineBuilder::lanl()).expect("chain restores");
    assert_eq!(restored.reports().count(), boot + 2, "every acked day survives");
    drop(reopened);

    // The lifecycle-rule reaper clears the staging area; the daily cycle
    // then continues cleanly (at-least-once: re-push the in-flight day).
    assert_eq!(service.abort_stale_uploads(), 1);
    assert_eq!(service.staged_uploads(), 0);
    let dir = StoreDir::open_with(service.clone(), cfg).expect("reopen after reaping");
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let mut engine = store.restore(EngineBuilder::lanl()).expect("restores");
    engine.ingest_day(DayBatch::Dns(day));
    store.commit(&engine).expect("freeze").wait().expect("cycle continues after recovery");
    assert_eq!(store.store().entries().len(), committed + 1);
}

/// The GC-failure satellite, deterministically: walk the fault point
/// forward until it lands on compaction's best-effort GC deletes (the
/// last mutations of the pass). The pass must *succeed*, report the
/// failures in `CompactionReport::gc_failures`, leak the superseded
/// objects, and the next open must quarantine them.
#[test]
fn gc_delete_failures_are_counted_not_fatal() {
    let challenge = challenge();
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy::default(),
    };

    for template in Backend::matrix("gc-count") {
        let master = template.fresh();
        {
            let dir = master.create(cfg).expect("create store");
            let store = Persistence::new(dir, SnapshotPolicy::default());
            let mut engine = engine_for(&challenge);
            for day in &challenge.dataset.days[..boot + 3] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("daily persist");
            }
        }

        let mut witnessed = false;
        for fault_at in 0u64.. {
            let backend = master.fork_copy("gc-count-iter");
            let mut dir = backend.open(cfg).expect("open the copied chain");
            let superseded = dir.entries().len();
            let injector = FaultInjector::new();
            dir.set_fault_injector(injector.clone());
            injector.arm(fault_at);
            match compact_store(&mut dir) {
                Err(_) => {
                    backend.cleanup();
                    continue; // crash before the commit; not the case under test
                }
                Ok(report) if injector.crashed() => {
                    // The fault landed on the GC deletes: all superseded
                    // objects failed to delete (the store is dead), each
                    // one counted — and named, so an operator can reconcile
                    // the leak against the next open's quarantine sweep.
                    assert_eq!(
                        report.gc_failures,
                        superseded as u64,
                        "{}: every superseded object's failed delete is counted",
                        backend.name()
                    );
                    assert_eq!(dir.gc_failures(), superseded as u64);
                    assert_eq!(
                        report.gc_failed_objects.len(),
                        superseded,
                        "{}: every leaked object is named: {:?}",
                        backend.name(),
                        report.gc_failed_objects
                    );
                    drop(dir);
                    // The leaked objects are exactly what the next open
                    // quarantines (quarantine keys embed the original
                    // object name); the compacted chain restores fine.
                    let reopened = backend.open(cfg).expect("reopen");
                    assert_eq!(reopened.quarantined().len(), superseded, "{}", backend.name());
                    for leaked in &report.gc_failed_objects {
                        assert!(
                            reopened.quarantined().iter().any(|q| q.contains(leaked.as_str())),
                            "{}: leaked {leaked:?} missing from quarantine {:?}",
                            backend.name(),
                            reopened.quarantined()
                        );
                    }
                    let restored = Persistence::new(reopened, SnapshotPolicy::default())
                        .restore(EngineBuilder::lanl())
                        .expect("restores");
                    assert_eq!(restored.reports().count(), boot + 3);
                    witnessed = true;
                    backend.cleanup();
                    break;
                }
                Ok(report) => {
                    // Ran past the whole schedule without firing.
                    assert_eq!(report.gc_failures, 0);
                    backend.cleanup();
                    break;
                }
            }
        }
        assert!(
            witnessed,
            "{}: the sweep never landed on a GC delete — schedule changed?",
            template.name()
        );
        master.cleanup();
    }
}
