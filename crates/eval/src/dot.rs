//! Graphviz (DOT) export of detected communities — the rendering behind the
//! paper's Fig. 4, 7 and 8 community diagrams.

use earlybird_core::{BpOutcome, DayContext, LabelReason};

/// Renders a labeled community as a Graphviz digraph: box nodes for hosts,
/// ellipse nodes for domains (filled by `category_color`), and an edge for
/// every compromised-host→labeled-domain contact in the day's index.
///
/// Seed domains are drawn as diamonds, mirroring the paper's Fig. 8 legend.
pub fn community_dot(
    title: &str,
    ctx: &DayContext<'_>,
    outcome: &BpOutcome,
    category_color: impl Fn(&str) -> &'static str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{title}\" {{\n"));
    out.push_str("  rankdir=LR;\n  node [fontsize=10];\n");

    for host in &outcome.compromised_hosts {
        out.push_str(&format!("  \"{host}\" [shape=box, style=filled, fillcolor=lightcoral];\n"));
    }
    for d in &outcome.labeled {
        let name = ctx.folded.resolve(d.domain);
        let shape = if d.reason == LabelReason::Seed { "diamond" } else { "ellipse" };
        let color = category_color(&name);
        out.push_str(&format!(
            "  \"{name}\" [shape={shape}, style=filled, fillcolor={color}, label=\"{name}\\nscore={score:.2}\"];\n",
            score = d.score,
        ));
    }
    for d in &outcome.labeled {
        let name = ctx.folded.resolve(d.domain);
        if let Some(hosts) = ctx.index.hosts_of(d.domain) {
            for host in hosts {
                if outcome.compromised_hosts.contains(host) {
                    out.push_str(&format!("  \"{host}\" -> \"{name}\";\n"));
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_core::{belief_propagation, BpConfig, Seeds, SimScorer};
    use earlybird_logmodel::{Day, DomainInterner, HostId, Timestamp};
    use earlybird_pipeline::{Contact, DayIndex, DomainHistory, RareSieve};

    #[test]
    fn dot_contains_hosts_domains_and_edges() {
        let folded = DomainInterner::new();
        let mut contacts = vec![
            Contact {
                ts: Timestamp::from_secs(100),
                host: HostId::new(1),
                domain: folded.intern("seed.ru"),
                dest_ip: None,
                http: None,
            },
            Contact {
                ts: Timestamp::from_secs(130),
                host: HostId::new(1),
                domain: folded.intern("related.ru"),
                dest_ip: None,
                http: None,
            },
        ];
        contacts.sort_by_key(|c| c.ts);
        let rare = RareSieve::paper_default().extract(&contacts, &DomainHistory::new());
        let index = DayIndex::build(Day::new(0), &contacts, rare, None);
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let seeds = Seeds::from_domains_with_hosts(&ctx, [folded.get("seed.ru").unwrap()]);
        let out = belief_propagation(
            &ctx,
            None,
            &SimScorer::lanl_default(),
            &seeds,
            &BpConfig::lanl_default(),
        );

        let dot = community_dot("test", &ctx, &out, |_| "gray80");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"host-1\""), "{dot}");
        assert!(dot.contains("\"seed.ru\""));
        assert!(dot.contains("shape=diamond"), "seed drawn as diamond");
        assert!(dot.contains("\"host-1\" -> \"seed.ru\""));
        assert!(dot.ends_with("}\n"));
    }
}
