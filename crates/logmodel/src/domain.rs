//! Domain-name helpers: folding to a registrable level and label inspection.
//!
//! The paper "folds" domain names to the second level (`news.nbc.com` →
//! `nbc.com`), "assuming that this captures the entity or organization
//! responsible for the domain"; for the anonymized LANL data it conservatively
//! folds to the third level (§IV-A).

/// Number of dot-separated labels in `name`.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::label_count;
/// assert_eq!(label_count("news.nbc.com"), 3);
/// assert_eq!(label_count("localhost"), 1);
/// ```
pub fn label_count(name: &str) -> usize {
    if name.is_empty() {
        0
    } else {
        // labels = dots + 1, counted eight bytes at a time; the previous
        // `split('.').count()` materialized every label on the sieve's
        // per-lookup path.
        crate::scan::count_byte(b'.', name.as_bytes()) + 1
    }
}

/// Folds `name` to its trailing `levels` labels.
///
/// Names with `levels` labels or fewer are returned unchanged. Folding to
/// zero levels yields the empty string.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::fold_domain;
/// assert_eq!(fold_domain("news.nbc.com", 2), "nbc.com");
/// assert_eq!(fold_domain("a.b.rainbow.c3", 3), "b.rainbow.c3");
/// assert_eq!(fold_domain("nbc.com", 2), "nbc.com");
/// ```
pub fn fold_domain(name: &str, levels: usize) -> &str {
    if levels == 0 {
        return "";
    }
    let mut dots_seen = 0;
    for (i, b) in name.bytes().enumerate().rev() {
        if b == b'.' {
            dots_seen += 1;
            if dots_seen == levels {
                return &name[i + 1..];
            }
        }
    }
    name
}

/// The final (top-level) label of `name`, e.g. `"info"` for `mgwg.info`.
///
/// Returns the whole name when it has a single label.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::top_level_domain;
/// assert_eq!(top_level_domain("mgwg.info"), "info");
/// ```
pub fn top_level_domain(name: &str) -> &str {
    fold_domain(name, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_to_second_level() {
        assert_eq!(fold_domain("news.nbc.com", 2), "nbc.com");
        assert_eq!(fold_domain("a.b.c.d.e", 2), "d.e");
    }

    #[test]
    fn folds_to_third_level_for_anonymized_names() {
        assert_eq!(fold_domain("x.y.fluttershy.c3", 3), "y.fluttershy.c3");
        assert_eq!(fold_domain("fluttershy.c3", 3), "fluttershy.c3");
    }

    #[test]
    fn short_names_unchanged() {
        assert_eq!(fold_domain("com", 2), "com");
        assert_eq!(fold_domain("", 2), "");
    }

    #[test]
    fn zero_levels_is_empty() {
        assert_eq!(fold_domain("a.b.c", 0), "");
    }

    #[test]
    fn tld_extraction() {
        assert_eq!(top_level_domain("f03712.info"), "info");
        assert_eq!(top_level_domain("localhost"), "localhost");
    }

    #[test]
    fn label_counts() {
        assert_eq!(label_count(""), 0);
        assert_eq!(label_count("a"), 1);
        assert_eq!(label_count("a.b.c"), 3);
    }

    #[test]
    fn label_count_keeps_split_semantics_on_degenerate_names() {
        // Empty labels still count, exactly as `split('.').count()` did:
        // a trailing dot adds one, a lone dot is two empty labels.
        for name in ["a.", ".a", ".", "..", "a..b", "a.b.", "...", "trailing.dot."] {
            assert_eq!(
                label_count(name),
                name.split('.').count(),
                "{name:?} diverged from split semantics"
            );
        }
        assert_eq!(label_count("a."), 2);
        assert_eq!(label_count("."), 2);
        assert_eq!(label_count(".."), 3);
    }

    #[test]
    fn label_count_handles_long_names() {
        // Longer than one SWAR word, with dots on both sides of the
        // 8-byte chunk boundaries.
        let name = "a.bb.ccc.dddd.eeeee.ffffff.ggggggg.hhhhhhhh.i";
        assert_eq!(label_count(name), name.split('.').count());
    }

    #[test]
    fn folding_is_idempotent() {
        for name in ["news.nbc.com", "a.b.c.d", "x.y", "z"] {
            for levels in 1..5 {
                let once = fold_domain(name, levels);
                assert_eq!(fold_domain(once, levels), once);
            }
        }
    }
}
