//! The [`Persistence`] facade's always-on contract, run as a backend
//! matrix (ISSUE 9):
//!
//! * a **background** commit freezes the engine's persistable state at
//!   the commit cursor — spans of *later* days pushed while the frozen
//!   view serializes (in any chunk split, streaming or batch) never leak
//!   into the committed chain, so the restore is bit-identical to a
//!   quiescent sync checkpoint taken at the same cursor;
//! * a **tiered** compaction pass replays at most `1 + K` chain blocks,
//!   and publishes that bound through the `compaction_replay_segments`
//!   gauge; every freeze records a `checkpoint_stall_micros` sample.

// Each integration-test crate uses a subset of the harness; the unused
// remainder is not a defect.
#[path = "support/backends.rs"]
#[allow(dead_code)]
mod support;

use earlybird::engine::{
    CompactionTrigger, DayBatch, Engine, EngineBuilder, IngestSource, LifecycleConfig,
    MetricsRegistry, Persistence, RetentionPolicy, SnapshotPolicy,
};
use earlybird::store::BlockKind;
use earlybird::synthgen::lanl::{LanlChallenge, LanlConfig, LanlGenerator};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use support::Backend;

/// One deterministic world shared by every case (generation dominates the
/// per-case cost, and the property quantifies over ingest schedules, not
/// datasets).
fn challenge() -> &'static LanlChallenge {
    static WORLD: OnceLock<LanlChallenge> = OnceLock::new();
    WORLD.get_or_init(|| LanlGenerator::new(LanlConfig::tiny()).generate())
}

fn lanl_engine(challenge: &LanlChallenge) -> Engine {
    EngineBuilder::lanl()
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config")
}

/// The full-snapshot bytes an engine restored from `store` would freeze —
/// the strongest state-equality probe we have (every counter, profile,
/// retained index, and cursor is in there).
fn restored_snapshot_bytes(store: &Persistence) -> Vec<u8> {
    let engine = store.restore(EngineBuilder::lanl()).expect("chain restores");
    let mut bytes = Vec::new();
    engine.freeze().write_to(&mut bytes).expect("frozen view serializes");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any number of later days and any chunk split (streamed
    /// `push_dns_records` or whole-day `ingest_day`) fed to the engine
    /// while a background [`CommitHandle`] is still in flight, the chain
    /// that commit produced restores bit-identically to a quiescent
    /// *sync* checkpoint of the same days — on every backend.
    #[test]
    fn background_commit_is_isolated_from_concurrent_ingest(
        extra_days in 1usize..=2,
        chunks in 1usize..=4,
        stream_later_days in proptest::bool::ANY,
    ) {
        let challenge = challenge();
        let boot = challenge.dataset.meta.bootstrap_days as usize;
        // The cursor under test: the first post-bootstrap operation day.
        let cut = boot + 1;
        let cfg = LifecycleConfig {
            compaction: CompactionTrigger::disabled(),
            retention: RetentionPolicy::default(),
        };

        for template in Backend::matrix("persist-bg") {
            // ---- Reference: quiescent sync commits of days[..=cut]. ----
            let backend = template.fresh();
            let store =
                Persistence::new(backend.create(cfg).expect("create store"), SnapshotPolicy::default());
            let mut engine = lanl_engine(challenge);
            for day in &challenge.dataset.days[..=cut] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("sync commit");
            }
            let reference_bytes = restored_snapshot_bytes(&store);
            drop(store);

            // ---- Under test: day `cut` committed in the background, ----
            // ---- later days ingested while the handle is in flight. ----
            let backend = backend.fresh();
            let store = Persistence::new(
                backend.create(cfg).expect("create store"),
                SnapshotPolicy::default().background(),
            );
            let mut engine = lanl_engine(challenge);
            for day in &challenge.dataset.days[..cut] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("background commit");
            }
            engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[cut]));
            let inflight = store.commit(&engine).expect("freeze is immediate");

            // The freeze has happened; everything ingested from here on
            // must be invisible to the commit racing underneath it.
            for day in &challenge.dataset.days[cut + 1..cut + 1 + extra_days] {
                if stream_later_days {
                    let chunk_len = (day.queries.len() / chunks).max(1);
                    let mut ingest = engine.begin_day(day.day, IngestSource::Dns);
                    for chunk in day.queries.chunks(chunk_len) {
                        ingest.push_dns_records(chunk);
                    }
                    ingest.finish();
                } else {
                    engine.ingest_day(DayBatch::Dns(day));
                }
            }
            let outcome = inflight.wait().expect("in-flight commit lands");
            prop_assert_eq!(outcome.block.kind, BlockKind::DaySegment, "{}", backend.name());
            prop_assert_eq!(outcome.block.days, 1, "{}: a segment carries one day", backend.name());
            store.drain().expect("queue drains clean");
            drop(store); // worker joins; only the backend survives

            let store = Persistence::new(
                backend.open(cfg).expect("reopen store"),
                SnapshotPolicy::default(),
            );
            let restored = store.restore(EngineBuilder::lanl()).expect("chain restores");
            prop_assert_eq!(
                restored.reports().count(),
                cut + 1,
                "{}: later days must not leak into the chain",
                backend.name()
            );
            drop(restored);
            let background_bytes = restored_snapshot_bytes(&store);
            prop_assert_eq!(
                &background_bytes,
                &reference_bytes,
                "{}: background commit under concurrent ingest must be \
                 bit-identical to the quiescent checkpoint at the same cursor",
                backend.name()
            );
            drop(store);
            backend.cleanup();
        }
    }
}

/// A daily cycle under `SnapshotPolicy::tier(K)`: every compaction pass
/// the trigger fires folds at most `K` segments and replays at most
/// `1 + K` chain blocks — published through `compaction_replay_segments`
/// — and every freeze records a `checkpoint_stall_micros` sample.
#[test]
fn tiered_cycle_bounds_replay_and_publishes_the_gauge() {
    const FOLD: usize = 2;
    let challenge = challenge();
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let total = boot + 6;
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger {
            max_segments: Some(3),
            max_segment_bytes: None,
            fold_segments: None, // the policy tier must override this
        },
        retention: RetentionPolicy::default(),
    };

    for template in Backend::matrix("persist-tier") {
        let backend = template.fresh();
        let registry = Arc::new(MetricsRegistry::new());
        let store = Persistence::new(
            backend.create(cfg).expect("create store"),
            SnapshotPolicy::default().tier(FOLD),
        );
        let mut engine = EngineBuilder::lanl()
            .metrics(Arc::clone(&registry))
            .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
            .expect("valid config");
        let replay_gauge = registry.gauge(
            "compaction_replay_segments",
            "Chain blocks replayed by the most recent compaction pass",
            &[],
        );

        let mut passes = 0usize;
        for day in &challenge.dataset.days[..total] {
            engine.ingest_day(DayBatch::Dns(day));
            let outcome = store.commit(&engine).expect("freeze").wait().expect("daily persist");
            if let Some(report) = outcome.compaction {
                passes += 1;
                assert!(
                    report.segments_folded <= FOLD,
                    "{}: folded {} > tier {FOLD}",
                    backend.name(),
                    report.segments_folded
                );
                assert!(
                    report.segments_replayed <= 1 + FOLD,
                    "{}: replayed {} blocks, tier bounds it at {}",
                    backend.name(),
                    report.segments_replayed,
                    1 + FOLD
                );
                assert_eq!(
                    replay_gauge.get(),
                    report.segments_replayed as i64,
                    "{}: gauge must mirror the last pass",
                    backend.name()
                );
            }
        }
        assert!(passes >= 2, "{}: trigger fired {passes} times; cycle too short", backend.name());
        let stalls = registry.latency_histogram("checkpoint_stall_micros", "", &[]).count();
        assert!(
            stalls >= total as u64,
            "{}: {total} freezes must each record a stall sample, got {stalls}",
            backend.name()
        );

        // The bounded-replay chain still restores the full history.
        let restored = store.restore(EngineBuilder::lanl()).expect("compacted chain restores");
        assert_eq!(restored.reports().count(), total, "{}", backend.name());
        drop(store);
        backend.cleanup();
    }
}
