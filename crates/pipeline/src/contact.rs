//! The uniform post-reduction record consumed by the detection layer.

use earlybird_logmodel::{DomainSym, HostId, Ipv4, Timestamp, UaSym};
use serde::{Deserialize, Serialize};

/// HTTP-specific context available when the source dataset is a web proxy
/// log; absent for DNS datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpContext {
    /// User-agent of the request, when the header was present.
    pub ua: Option<UaSym>,
    /// Whether the request carried a Referer header (beacon processes
    /// typically do not, §IV-C).
    pub referer_present: bool,
}

/// One host→domain contact after normalization and reduction: UTC timestamp,
/// resolved host, *folded* destination domain, and optional HTTP context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contact {
    /// UTC time of the contact.
    pub ts: Timestamp,
    /// The internal workstation that made the contact.
    pub host: HostId,
    /// Folded destination domain (symbol in the pipeline's folded interner).
    pub domain: DomainSym,
    /// Destination / resolved address, when the record carried one.
    pub dest_ip: Option<Ipv4>,
    /// HTTP context for proxy-derived contacts; `None` for DNS.
    pub http: Option<HttpContext>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::DomainInterner;

    #[test]
    fn contact_is_copy_and_comparable() {
        let domains = DomainInterner::new();
        let c = Contact {
            ts: Timestamp::from_secs(10),
            host: HostId::new(1),
            domain: domains.intern("nbc.com"),
            dest_ip: None,
            http: Some(HttpContext { ua: None, referer_present: true }),
        };
        let d = c;
        assert_eq!(c, d);
        assert!(c.http.unwrap().referer_present);
    }
}
