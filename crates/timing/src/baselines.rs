//! Baseline periodicity detectors, implemented for ablation benchmarks.
//!
//! * [`StdDevDetector`] — the approach the paper *initially tested and
//!   rejected*: label a series automated when the standard deviation of its
//!   inter-connection intervals is small. "A single outlier could result in
//!   high standard deviation" (§IV-C); the ablation bench demonstrates this.
//! * [`AutocorrelationDetector`] — BotSniffer-style (§VII cites
//!   autocorrelation in BotSniffer): bucket connections into a fixed-width
//!   time series and look for a strong autocorrelation peak at a non-zero
//!   lag.

use crate::histogram::intervals_of;
use earlybird_logmodel::Timestamp;
use serde::{Deserialize, Serialize};

/// Standard-deviation-based automation detector (rejected baseline).
///
/// Labels a series automated when the inter-connection intervals' standard
/// deviation is at most `max_std` seconds.
///
/// # Example
///
/// ```
/// use earlybird_timing::StdDevDetector;
/// use earlybird_logmodel::Timestamp;
/// let det = StdDevDetector::new(10.0, 4);
/// let beacon: Vec<Timestamp> = (0..6).map(|i| Timestamp::from_secs(i * 60)).collect();
/// assert!(det.is_automated(&beacon));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StdDevDetector {
    max_std: f64,
    min_connections: usize,
}

impl StdDevDetector {
    /// Creates a detector labeling series with interval std-dev `<= max_std`
    /// seconds as automated.
    ///
    /// # Panics
    ///
    /// Panics if `max_std` is negative or `min_connections < 2`.
    pub fn new(max_std: f64, min_connections: usize) -> Self {
        assert!(max_std >= 0.0, "std-dev bound must be non-negative");
        assert!(min_connections >= 2, "need at least two connections");
        StdDevDetector { max_std, min_connections }
    }

    /// Sample standard deviation of the series' intervals, or `None` for
    /// series shorter than the minimum.
    pub fn interval_std(&self, timestamps: &[Timestamp]) -> Option<f64> {
        if timestamps.len() < self.min_connections {
            return None;
        }
        let intervals = intervals_of(timestamps);
        let n = intervals.len() as f64;
        let mean = intervals.iter().sum::<u64>() as f64 / n;
        let var = intervals.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        Some(var.sqrt())
    }

    /// Whether the series is automated under the std-dev criterion.
    pub fn is_automated(&self, timestamps: &[Timestamp]) -> bool {
        self.interval_std(timestamps).is_some_and(|s| s <= self.max_std)
    }
}

/// Autocorrelation-based periodicity detector (BotSniffer-style baseline).
///
/// Connections are bucketed into a binary presence series with
/// `bucket_secs`-wide buckets; the series is automated when the maximum
/// normalized autocorrelation over non-zero lags exceeds `threshold`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AutocorrelationDetector {
    bucket_secs: u64,
    threshold: f64,
    min_connections: usize,
}

impl AutocorrelationDetector {
    /// Creates a detector with the given bucket width, correlation threshold
    /// in `[0, 1]`, and minimum series length.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs == 0`, the threshold is outside `[0, 1]`, or
    /// `min_connections < 3`.
    pub fn new(bucket_secs: u64, threshold: f64, min_connections: usize) -> Self {
        assert!(bucket_secs > 0, "bucket width must be positive");
        assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");
        assert!(min_connections >= 3, "autocorrelation needs at least three points");
        AutocorrelationDetector { bucket_secs, threshold, min_connections }
    }

    /// Maximum normalized autocorrelation over non-zero lags, or `None` for
    /// short/degenerate series.
    pub fn peak_autocorrelation(&self, timestamps: &[Timestamp]) -> Option<f64> {
        if timestamps.len() < self.min_connections {
            return None;
        }
        let start = timestamps.first()?.as_secs();
        let end = timestamps.last()?.as_secs();
        let len = ((end - start) / self.bucket_secs + 1) as usize;
        if len < 4 {
            return None;
        }
        let mut series = vec![0.0f64; len];
        for t in timestamps {
            series[((t.as_secs() - start) / self.bucket_secs) as usize] = 1.0;
        }
        let n = series.len();
        let mean = series.iter().sum::<f64>() / n as f64;
        let denom: f64 = series.iter().map(|x| (x - mean).powi(2)).sum();
        if denom == 0.0 {
            return None;
        }
        let mut best = f64::NEG_INFINITY;
        for lag in 1..=(n / 2) {
            let num: f64 =
                (0..n - lag).map(|i| (series[i] - mean) * (series[i + lag] - mean)).sum();
            best = best.max(num / denom);
        }
        Some(best)
    }

    /// Whether the series is automated under the autocorrelation criterion.
    pub fn is_automated(&self, timestamps: &[Timestamp]) -> bool {
        self.peak_autocorrelation(timestamps).is_some_and(|c| c >= self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: &[u64]) -> Vec<Timestamp> {
        v.iter().map(|&s| Timestamp::from_secs(s)).collect()
    }

    #[test]
    fn stddev_detects_perfect_beacon() {
        let det = StdDevDetector::new(5.0, 4);
        let ts: Vec<Timestamp> = (0..10).map(|i| Timestamp::from_secs(i * 300)).collect();
        assert!(det.is_automated(&ts));
        assert_eq!(det.interval_std(&ts), Some(0.0));
    }

    #[test]
    fn stddev_breaks_on_single_outlier() {
        // The failure mode that motivated the dynamic-histogram method: one
        // 4000 s gap blows up the standard deviation.
        let det = StdDevDetector::new(30.0, 4);
        let mut t = 0;
        let mut ts = vec![Timestamp::from_secs(0)];
        for i in 0..12 {
            t += if i == 6 { 4000 } else { 600 };
            ts.push(Timestamp::from_secs(t));
        }
        assert!(!det.is_automated(&ts), "std-dev detector must fail here");
        // ... while the paper's detector survives:
        assert!(crate::AutomationDetector::paper_default().is_automated(&ts));
    }

    #[test]
    fn stddev_short_series_is_none() {
        let det = StdDevDetector::new(5.0, 4);
        assert_eq!(det.interval_std(&secs(&[0, 10])), None);
    }

    #[test]
    fn autocorr_detects_beacon() {
        let det = AutocorrelationDetector::new(10, 0.5, 4);
        let ts: Vec<Timestamp> = (0..30).map(|i| Timestamp::from_secs(i * 100)).collect();
        assert!(det.is_automated(&ts));
    }

    #[test]
    fn autocorr_rejects_irregular_series() {
        let det = AutocorrelationDetector::new(10, 0.5, 4);
        let ts = secs(&[0, 17, 430, 431, 2951, 4000, 4003, 9001]);
        assert!(!det.is_automated(&ts));
    }

    #[test]
    fn autocorr_degenerate_series_is_none() {
        let det = AutocorrelationDetector::new(10, 0.5, 3);
        // All connections land in one bucket.
        assert_eq!(det.peak_autocorrelation(&secs(&[0, 1, 2])), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn autocorr_rejects_zero_bucket() {
        let _ = AutocorrelationDetector::new(0, 0.5, 3);
    }
}
