//! Manifest-driven snapshot directory lifecycle: bounded chains, atomic
//! commits, compaction, and retention GC.
//!
//! The raw block layer ([`crate::frame`]) writes an append-only stream —
//! one full snapshot plus one segment per day — which is exactly wrong for
//! a service that runs for months: restore cost grows O(uptime) and
//! nothing ever prunes state. [`StoreDir`] turns that stream into a
//! *managed directory*:
//!
//! ```text
//! store/
//!   MANIFEST              small, CRC-protected, atomically replaced
//!   full-000003.ebstore   the chain's full snapshot
//!   seg-000004.ebstore    ordered O(day) segments …
//!   seg-000005.ebstore
//!   quarantine/           orphaned / leftover files moved aside at open
//! ```
//!
//! The `MANIFEST` records the ordered chain of `full + N segment` files
//! (name, byte length, block CRC) under its own magic, version, and
//! trailing CRC-32. Every mutation follows the same discipline:
//!
//! 1. write the new file to a `*.tmp` name and fsync it;
//! 2. rename it to its final name and fsync the directory;
//! 3. write `MANIFEST.tmp`, fsync, rename over `MANIFEST`, fsync the
//!    directory;
//! 4. only then delete files the new manifest no longer references
//!    (best-effort — leftovers are quarantined at the next open).
//!
//! A crash between any two steps leaves either the old chain or the new
//! one, never a torn store: un-renamed temp files and committed-but-
//! unreferenced blocks are swept into `quarantine/` by [`StoreDir::open`],
//! which restores in O(current state) regardless of uptime.
//!
//! Compaction and retention *policy* lives here ([`LifecycleConfig`]); the
//! pass itself needs an engine to replay the chain, so it lives in
//! `earlybird-engine` (`compact_store`): restore the chain into a scratch
//! engine, optionally prune contact indexes past
//! [`RetentionPolicy::retain_days`] (their counters stay in the full block
//! — the full block is the source of truth for evicted days), write one
//! new full block, and atomically swap the manifest via
//! [`StoreDir::commit_full`].

use crate::codec::{crc32, Decoder, Encoder};
use crate::error::{StoreError, StoreResult};
use crate::frame::{BlockKind, CheckpointMeta};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// Magic bytes opening the `MANIFEST` file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"EBMANIF1";

/// Newest manifest layout revision this build reads and writes.
pub const MANIFEST_VERSION: u16 = 1;

const MANIFEST_NAME: &str = "MANIFEST";
const QUARANTINE_DIR: &str = "quarantine";

// -- policy -----------------------------------------------------------------

/// When the segment chain is folded back into a single full block.
///
/// A trigger fires when *any* configured bound is exceeded; with both
/// bounds `None` compaction never runs automatically (it can still be
/// invoked explicitly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionTrigger {
    /// Compact once the chain holds more than this many segments.
    pub max_segments: Option<usize>,
    /// Compact once the segments' total size exceeds this many bytes.
    pub max_segment_bytes: Option<u64>,
}

impl Default for CompactionTrigger {
    /// Compact past 32 segments — roughly a month of daily cycles.
    fn default() -> Self {
        CompactionTrigger { max_segments: Some(32), max_segment_bytes: None }
    }
}

impl CompactionTrigger {
    /// A trigger that never fires (explicit-compaction-only stores).
    pub fn disabled() -> Self {
        CompactionTrigger { max_segments: None, max_segment_bytes: None }
    }
}

/// How much per-day state a compacted full block keeps investigable.
///
/// Retention prunes the *contact indexes* of days older than the newest
/// `retain_days` during compaction; the pruned days' counter reports are
/// still folded into the full block first, so no acknowledged day ever
/// disappears from the record — the full block stays the source of truth
/// for evicted days.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep only the newest N days' contact indexes through a compaction;
    /// `None` keeps every retained index.
    pub retain_days: Option<usize>,
}

/// The lifecycle knobs of a [`StoreDir`]: compaction trigger plus retention
/// policy. Operational, not part of the on-disk format — two processes may
/// open the same directory with different configurations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleConfig {
    /// When the segment chain is compacted.
    pub compaction: CompactionTrigger,
    /// What a compaction keeps investigable.
    pub retention: RetentionPolicy,
}

/// Outcome of one compaction pass (produced by the engine crate's
/// `compact_store`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments folded into the new full block.
    pub segments_folded: usize,
    /// Chain bytes before the pass (full + segments).
    pub bytes_before: u64,
    /// Bytes of the single full block after the pass.
    pub bytes_after: u64,
    /// Retained contact indexes pruned by the retention policy.
    pub days_pruned: usize,
    /// The new full block's summary.
    pub full: CheckpointMeta,
}

// -- manifest ---------------------------------------------------------------

/// One file of the chain, as recorded by the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Full snapshot or day segment.
    pub kind: BlockKind,
    /// File name relative to the store directory.
    pub name: String,
    /// Expected byte length (block including magic and CRC).
    pub bytes: u64,
    /// The block's CRC-32, as reported at commit time.
    pub crc: u32,
}

/// The decoded `MANIFEST`: a generation counter plus the ordered chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Manifest {
    /// Monotonic commit counter; also seeds unique chain file names.
    generation: u64,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        let mut out = Vec::from(MANIFEST_MAGIC);
        e.varint(MANIFEST_VERSION as u64);
        e.varint(self.generation);
        e.usizev(self.entries.len());
        for entry in &self.entries {
            e.u8(entry.kind.to_byte());
            e.str(&entry.name);
            e.varint(entry.bytes);
            e.varint(entry.crc as u64);
        }
        out.extend_from_slice(&e.into_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> StoreResult<Manifest> {
        if bytes.len() < MANIFEST_MAGIC.len() + 4 {
            return Err(StoreError::Truncated { context: "manifest" });
        }
        if bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let (body, stored) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(stored.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { expected: stored, found: computed });
        }
        let mut d = Decoder::new(&body[MANIFEST_MAGIC.len()..], "manifest");
        let version = d.varint()?;
        if version > MANIFEST_VERSION as u64 {
            return Err(StoreError::UnsupportedVersion {
                found: version.min(u16::MAX as u64) as u16,
                supported: MANIFEST_VERSION,
            });
        }
        let generation = d.varint()?;
        let n = d.seq_len(3)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = BlockKind::from_byte(d.u8()?)?;
            let name = d.str()?;
            if name.is_empty()
                || name.contains(['/', '\\'])
                || name == ".."
                || name == MANIFEST_NAME
            {
                return Err(StoreError::corrupt(format!("manifest entry name {name:?} invalid")));
            }
            let bytes = d.varint()?;
            let crc = u32::try_from(d.varint()?)
                .map_err(|_| StoreError::corrupt("manifest entry CRC exceeds u32"))?;
            entries.push(ManifestEntry { kind, name, bytes, crc });
        }
        d.finish()?;
        for (i, entry) in entries.iter().enumerate() {
            let expected = if i == 0 { BlockKind::Full } else { BlockKind::DaySegment };
            if entry.kind != expected {
                return Err(StoreError::corrupt(format!(
                    "manifest entry {i} is a {:?} block; expected {expected:?}",
                    entry.kind
                )));
            }
            if entries[..i].iter().any(|prev| prev.name == entry.name) {
                return Err(StoreError::corrupt(format!("manifest lists {:?} twice", entry.name)));
            }
        }
        Ok(Manifest { generation, entries })
    }
}

// -- fault injection --------------------------------------------------------

/// Deterministic crash simulation for durability tests: fails the N-th
/// filesystem mutation (and every one after it, like a dead process).
///
/// Production code never sets this; the crash-during-compaction suite uses
/// it to kill the lifecycle at every write/rename point and prove
/// [`StoreDir::open`] always recovers a valid chain. The countdown is
/// shared by clones, so a [`PendingBlock`] split off a [`StoreDir`] dies
/// with it.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    /// `-1` = disarmed; `0` = dead (every op fails); `n > 0` = ops left.
    countdown: Arc<AtomicI64>,
    /// Whether an operation has actually been failed.
    fired: Arc<AtomicBool>,
}

impl FaultInjector {
    /// A disarmed injector (all operations succeed).
    pub fn new() -> Self {
        FaultInjector {
            countdown: Arc::new(AtomicI64::new(-1)),
            fired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Arms the injector: the `ops`-th subsequent filesystem mutation (0 =
    /// the very next one) fails with an injected I/O error, as does every
    /// mutation after it.
    pub fn arm(&self, ops: u64) {
        self.fired.store(false, Ordering::SeqCst);
        self.countdown.store(ops.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Disarms the injector.
    pub fn disarm(&self) {
        self.countdown.store(-1, Ordering::SeqCst);
    }

    /// Whether the injected crash has actually failed an operation (the
    /// armed countdown may also simply outlive the run).
    pub fn crashed(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Accounts one filesystem mutation, failing if the crash point has
    /// been reached.
    fn tick(&self, op: &'static str) -> StoreResult<()> {
        let left = self.countdown.load(Ordering::SeqCst);
        if left < 0 {
            return Ok(());
        }
        if left == 0 {
            self.fired.store(true, Ordering::SeqCst);
            return Err(StoreError::Io(io::Error::other(format!("injected crash at {op}"))));
        }
        self.countdown.store(left - 1, Ordering::SeqCst);
        Ok(())
    }
}

// -- pending blocks ---------------------------------------------------------

/// A chain file being written: an anonymous `*.tmp` in the store directory
/// that becomes visible only when committed through
/// [`StoreDir::commit_full`] / [`StoreDir::commit_segment`]. Dropping it
/// uncommitted leaves only a temp file, which the next
/// [`StoreDir::open`] quarantines.
#[derive(Debug)]
pub struct PendingBlock {
    kind: BlockKind,
    tmp: PathBuf,
    file: BufWriter<File>,
    fault: FaultInjector,
}

impl Write for PendingBlock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl PendingBlock {
    /// Flushes and fsyncs the temp file, returning its path.
    fn seal(mut self) -> StoreResult<(BlockKind, PathBuf)> {
        self.fault.tick("fsync of the pending block")?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok((self.kind, self.tmp))
    }
}

// -- the store directory ----------------------------------------------------

/// A snapshot directory owned through its manifest: every visible chain
/// mutation is an atomic manifest replacement, so a crash at any point
/// leaves either the old chain or the new one. See the module docs for the
/// layout and the commit discipline.
#[derive(Debug)]
pub struct StoreDir {
    root: PathBuf,
    cfg: LifecycleConfig,
    manifest: Manifest,
    quarantined: Vec<PathBuf>,
    fault: FaultInjector,
}

impl StoreDir {
    /// Creates a fresh store directory (parents included) with an empty
    /// chain.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; a directory that already
    /// holds a `MANIFEST` is refused as [`StoreError::Corrupt`] — use
    /// [`StoreDir::open`] (or [`StoreDir::open_or_create`]) for those.
    pub fn create(root: impl Into<PathBuf>, cfg: LifecycleConfig) -> StoreResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        if root.join(MANIFEST_NAME).exists() {
            return Err(StoreError::corrupt(format!(
                "{} already holds a store (open it instead of creating over it)",
                root.display()
            )));
        }
        let mut dir = StoreDir {
            root,
            cfg,
            manifest: Manifest::default(),
            quarantined: Vec::new(),
            fault: FaultInjector::new(),
        };
        let manifest = dir.manifest.clone();
        dir.write_manifest(&manifest)?;
        Ok(dir)
    }

    /// Opens an existing store directory: reads and validates the
    /// `MANIFEST` (magic, version, CRC, entry ordering), verifies every
    /// referenced chain file exists with its recorded length, and sweeps
    /// orphaned files — leftover `*.tmp`s and `*.ebstore` blocks no
    /// manifest references, the residue of a crash — into `quarantine/`.
    ///
    /// Open (and the restore that follows) is O(current state): however
    /// long the service ran, the chain holds one full block plus the
    /// segments appended since the last compaction.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for a missing, corrupt, or future-versioned
    /// manifest, and for manifest-referenced files that are missing or
    /// damaged on disk (a broken chain is surfaced, never silently
    /// repaired).
    pub fn open(root: impl Into<PathBuf>, cfg: LifecycleConfig) -> StoreResult<Self> {
        let root = root.into();
        let manifest_bytes = match fs::read(root.join(MANIFEST_NAME)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(StoreError::corrupt(format!(
                    "{} has no MANIFEST: not a store directory",
                    root.display()
                )))
            }
            Err(e) => return Err(e.into()),
        };
        let manifest = Manifest::decode(&manifest_bytes)?;
        let mut dir =
            StoreDir { root, cfg, manifest, quarantined: Vec::new(), fault: FaultInjector::new() };
        dir.validate_chain()?;
        dir.sweep_orphans()?;
        Ok(dir)
    }

    /// [`StoreDir::open`] when a manifest exists, [`StoreDir::create`]
    /// otherwise — the idiomatic entry point for a daily-cycle service.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::open`] / [`StoreDir::create`].
    pub fn open_or_create(root: impl Into<PathBuf>, cfg: LifecycleConfig) -> StoreResult<Self> {
        let root = root.into();
        if root.join(MANIFEST_NAME).exists() {
            Self::open(root, cfg)
        } else {
            Self::create(root, cfg)
        }
    }

    // -- accessors ----------------------------------------------------------

    /// The directory this store owns.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// The lifecycle configuration supplied at open/create.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// The manifest's monotonic commit counter.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// The ordered chain recorded by the manifest.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.manifest.entries
    }

    /// Whether the chain holds no blocks yet.
    pub fn is_empty(&self) -> bool {
        self.manifest.entries.is_empty()
    }

    /// Segments currently in the chain (excludes the full block).
    pub fn segment_count(&self) -> usize {
        self.manifest.entries.len().saturating_sub(1)
    }

    /// Total bytes of the chain's segments.
    pub fn segment_bytes(&self) -> u64 {
        self.manifest.entries.iter().skip(1).map(|e| e.bytes).sum()
    }

    /// Total bytes of the whole chain (full block + segments).
    pub fn chain_bytes(&self) -> u64 {
        self.manifest.entries.iter().map(|e| e.bytes).sum()
    }

    /// Whether the configured [`CompactionTrigger`] has fired.
    pub fn compaction_due(&self) -> bool {
        let t = &self.cfg.compaction;
        t.max_segments.is_some_and(|n| self.segment_count() > n)
            || t.max_segment_bytes.is_some_and(|b| self.segment_bytes() > b)
    }

    /// Files moved into `quarantine/` by [`StoreDir::open`].
    pub fn quarantined(&self) -> &[PathBuf] {
        &self.quarantined
    }

    /// Installs a [`FaultInjector`] for durability tests; every subsequent
    /// filesystem mutation is accounted against it.
    pub fn set_fault_injector(&mut self, fault: FaultInjector) {
        self.fault = fault;
    }

    // -- reading ------------------------------------------------------------

    /// A reader over the chain in manifest order — exactly the
    /// `full + N segments` stream `EngineBuilder::restore` replays.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a chain file cannot be opened.
    pub fn reader(&self) -> StoreResult<ChainReader> {
        let files: Vec<PathBuf> =
            self.manifest.entries.iter().map(|e| self.root.join(&e.name)).collect();
        Ok(ChainReader { files: files.into_iter(), current: None })
    }

    // -- writing ------------------------------------------------------------

    /// Opens a new chain file of `kind`, written to a temp name until
    /// committed. The returned handle implements [`Write`]; hand it to the
    /// engine's block writer, then commit via [`StoreDir::commit_full`] /
    /// [`StoreDir::commit_segment`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when a segment is begun on an empty chain
    /// (a full snapshot must exist first); [`StoreError::Io`] on
    /// filesystem failures.
    pub fn begin(&self, kind: BlockKind) -> StoreResult<PendingBlock> {
        if kind == BlockKind::DaySegment && self.is_empty() {
            return Err(StoreError::corrupt(
                "cannot append a segment to an empty store: write a full snapshot first",
            ));
        }
        self.fault.tick("creation of the pending block")?;
        let tmp = self.root.join(format!("pending-{:06}.tmp", self.manifest.generation + 1));
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        Ok(PendingBlock { kind, tmp, file: BufWriter::new(file), fault: self.fault.clone() })
    }

    /// Commits a full snapshot, **replacing the whole chain**: the pending
    /// file is fsynced and renamed to `full-<generation>.ebstore`, the
    /// manifest atomically swaps to reference only it, and the previous
    /// chain's files are deleted best-effort (a crash before deletion
    /// leaves them for quarantine). This is both the first-checkpoint path
    /// and the compaction commit.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when `pending` is not a full block or `meta`
    /// disagrees with it; [`StoreError::Io`] on filesystem failures.
    pub fn commit_full(&mut self, pending: PendingBlock, meta: &CheckpointMeta) -> StoreResult<()> {
        self.commit(pending, meta, BlockKind::Full)
    }

    /// Commits a day segment: the pending file is fsynced and renamed to
    /// `seg-<generation>.ebstore` and the manifest atomically swaps to a
    /// copy with the segment appended to the chain.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when `pending` is not a segment block, the
    /// chain is empty, or `meta` disagrees with the bytes written;
    /// [`StoreError::Io`] on filesystem failures.
    pub fn commit_segment(
        &mut self,
        pending: PendingBlock,
        meta: &CheckpointMeta,
    ) -> StoreResult<()> {
        self.commit(pending, meta, BlockKind::DaySegment)
    }

    fn commit(
        &mut self,
        pending: PendingBlock,
        meta: &CheckpointMeta,
        expect: BlockKind,
    ) -> StoreResult<()> {
        if pending.kind != expect || meta.kind != expect {
            return Err(StoreError::corrupt(format!(
                "commit of a {expect:?} block was handed a {:?} pending / {:?} meta",
                pending.kind, meta.kind
            )));
        }
        if expect == BlockKind::DaySegment && self.is_empty() {
            return Err(StoreError::corrupt(
                "cannot commit a segment to an empty store: write a full snapshot first",
            ));
        }
        let (kind, tmp) = pending.seal()?;
        let written = fs::metadata(&tmp)?.len();
        if written != meta.bytes {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::corrupt(format!(
                "pending block holds {written} bytes but its meta claims {}",
                meta.bytes
            )));
        }

        let generation = self.manifest.generation + 1;
        let prefix = if kind == BlockKind::Full { "full" } else { "seg" };
        let name = format!("{prefix}-{generation:06}.ebstore");
        self.fault.tick("rename of the committed block")?;
        fs::rename(&tmp, self.root.join(&name))?;
        self.sync_root()?;

        let mut next = self.manifest.clone();
        next.generation = generation;
        let entry = ManifestEntry { kind, name, bytes: meta.bytes, crc: meta.checksum };
        let replaced: Vec<String> = if kind == BlockKind::Full {
            let old = next.entries.drain(..).map(|e| e.name).collect();
            next.entries.push(entry);
            old
        } else {
            next.entries.push(entry);
            Vec::new()
        };
        self.write_manifest(&next)?;
        self.manifest = next;

        // The old chain is unreferenced now; deletion is garbage collection,
        // not correctness. A failure here (or a crash) leaves orphans for
        // the next open's quarantine sweep.
        for name in replaced {
            self.fault.tick("removal of a superseded chain file")?;
            let _ = fs::remove_file(self.root.join(name));
        }
        Ok(())
    }

    // -- internals ----------------------------------------------------------

    /// Atomically replaces `MANIFEST` with `next` (tmp + fsync + rename +
    /// dir fsync). `self.manifest` is untouched — callers install `next`
    /// only after this succeeds.
    fn write_manifest(&mut self, next: &Manifest) -> StoreResult<()> {
        self.fault.tick("write of the manifest temp file")?;
        let tmp = self.root.join("MANIFEST.tmp");
        let bytes = next.encode();
        {
            let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        self.fault.tick("rename of the manifest")?;
        fs::rename(&tmp, self.root.join(MANIFEST_NAME))?;
        self.sync_root()?;
        Ok(())
    }

    fn sync_root(&self) -> StoreResult<()> {
        self.fault.tick("fsync of the store directory")?;
        // Directory fsync is not portable everywhere; treat a refusal as
        // best-effort rather than a broken store.
        if let Ok(dir) = File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// Verifies every manifest-referenced file exists with its recorded
    /// length. Content integrity is the block CRC's job during restore.
    fn validate_chain(&self) -> StoreResult<()> {
        for entry in &self.manifest.entries {
            let path = self.root.join(&entry.name);
            let meta = fs::metadata(&path).map_err(|e| {
                if e.kind() == io::ErrorKind::NotFound {
                    StoreError::corrupt(format!(
                        "manifest references {:?}, which is missing from the store",
                        entry.name
                    ))
                } else {
                    StoreError::Io(e)
                }
            })?;
            if meta.len() != entry.bytes {
                return Err(StoreError::corrupt(format!(
                    "chain file {:?} holds {} bytes; manifest records {}",
                    entry.name,
                    meta.len(),
                    entry.bytes
                )));
            }
        }
        Ok(())
    }

    /// Moves unreferenced store files (crash residue: `*.tmp`, superseded
    /// or never-committed `*.ebstore`) into `quarantine/`.
    fn sweep_orphans(&mut self) -> StoreResult<()> {
        let mut orphans = Vec::new();
        for dirent in fs::read_dir(&self.root)? {
            let dirent = dirent?;
            if !dirent.file_type()?.is_file() {
                continue;
            }
            let name = dirent.file_name().to_string_lossy().into_owned();
            if name == MANIFEST_NAME {
                continue;
            }
            let ours = name.ends_with(".ebstore") || name.ends_with(".tmp");
            let referenced = self.manifest.entries.iter().any(|e| e.name == name);
            if ours && !referenced {
                orphans.push(name);
            }
        }
        if orphans.is_empty() {
            return Ok(());
        }
        orphans.sort();
        let quarantine = self.root.join(QUARANTINE_DIR);
        fs::create_dir_all(&quarantine)?;
        for name in orphans {
            let mut target = quarantine.join(&name);
            let mut suffix = 0u32;
            while target.exists() {
                suffix += 1;
                target = quarantine.join(format!("{name}.{suffix}"));
            }
            fs::rename(self.root.join(&name), &target)?;
            self.quarantined.push(target);
        }
        Ok(())
    }
}

// -- chain reader -----------------------------------------------------------

/// Sequential [`Read`] over the manifest's chain files, in order — feed to
/// `EngineBuilder::restore` (or use `EngineBuilder::restore_dir`).
#[derive(Debug)]
pub struct ChainReader {
    files: std::vec::IntoIter<PathBuf>,
    current: Option<File>,
}

impl Read for ChainReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.current.is_none() {
                match self.files.next() {
                    Some(path) => self.current = Some(File::open(path)?),
                    None => return Ok(0),
                }
            }
            let n = self.current.as_mut().expect("file open").read(buf)?;
            if n > 0 || buf.is_empty() {
                return Ok(n);
            }
            self.current = None; // EOF on this file; advance the chain.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir()
            .join(format!("earlybird-lifecycle-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn manifest_roundtrips_and_rejects_damage() {
        let manifest = Manifest {
            generation: 7,
            entries: vec![
                ManifestEntry {
                    kind: BlockKind::Full,
                    name: "full-000005.ebstore".into(),
                    bytes: 1234,
                    crc: 0xDEAD_BEEF,
                },
                ManifestEntry {
                    kind: BlockKind::DaySegment,
                    name: "seg-000006.ebstore".into(),
                    bytes: 56,
                    crc: 1,
                },
            ],
        };
        let bytes = manifest.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), manifest);

        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Manifest::decode(&bad).is_err(), "flip at byte {i} must be detected");
        }
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut at {cut} must be detected");
        }
    }

    #[test]
    fn manifest_rejects_structural_violations() {
        // Segment-first chain.
        let m = Manifest {
            generation: 1,
            entries: vec![ManifestEntry {
                kind: BlockKind::DaySegment,
                name: "seg-000001.ebstore".into(),
                bytes: 1,
                crc: 0,
            }],
        };
        assert!(matches!(Manifest::decode(&m.encode()), Err(StoreError::Corrupt { .. })));

        // Path traversal in a name.
        let m = Manifest {
            generation: 1,
            entries: vec![ManifestEntry {
                kind: BlockKind::Full,
                name: "../evil.ebstore".into(),
                bytes: 1,
                crc: 0,
            }],
        };
        assert!(matches!(Manifest::decode(&m.encode()), Err(StoreError::Corrupt { .. })));

        // Duplicate names.
        let entry = ManifestEntry {
            kind: BlockKind::DaySegment,
            name: "seg-000002.ebstore".into(),
            bytes: 1,
            crc: 0,
        };
        let m = Manifest {
            generation: 2,
            entries: vec![
                ManifestEntry {
                    kind: BlockKind::Full,
                    name: "full-000001.ebstore".into(),
                    bytes: 1,
                    crc: 0,
                },
                entry.clone(),
                entry,
            ],
        };
        assert!(matches!(Manifest::decode(&m.encode()), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn create_then_open_roundtrips_an_empty_chain() {
        let root = tmp_root("create");
        let dir = StoreDir::create(&root, LifecycleConfig::default()).unwrap();
        assert!(dir.is_empty());
        assert_eq!(dir.generation(), 0);
        drop(dir);

        assert!(
            matches!(
                StoreDir::create(&root, LifecycleConfig::default()),
                Err(StoreError::Corrupt { .. })
            ),
            "creating over an existing store must be refused"
        );
        let reopened = StoreDir::open(&root, LifecycleConfig::default()).unwrap();
        assert!(reopened.is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_requires_a_manifest() {
        let root = tmp_root("no-manifest");
        fs::create_dir_all(&root).unwrap();
        assert!(matches!(
            StoreDir::open(&root, LifecycleConfig::default()),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compaction_trigger_fires_on_either_bound() {
        let root = tmp_root("trigger");
        let mut dir = StoreDir::create(
            &root,
            LifecycleConfig {
                compaction: CompactionTrigger {
                    max_segments: Some(2),
                    max_segment_bytes: Some(1_000_000),
                },
                retention: RetentionPolicy::default(),
            },
        )
        .unwrap();
        // Simulate manifest states without real blocks.
        dir.manifest.entries.push(ManifestEntry {
            kind: BlockKind::Full,
            name: "full-000001.ebstore".into(),
            bytes: 10,
            crc: 0,
        });
        assert!(!dir.compaction_due());
        for i in 0..3 {
            dir.manifest.entries.push(ManifestEntry {
                kind: BlockKind::DaySegment,
                name: format!("seg-00000{}.ebstore", i + 2),
                bytes: 10,
                crc: 0,
            });
        }
        assert!(dir.compaction_due(), "3 segments > max 2");
        dir.manifest.entries.truncate(2);
        assert!(!dir.compaction_due());
        dir.manifest.entries[1].bytes = 2_000_000;
        assert!(dir.compaction_due(), "byte bound exceeded");
        fs::remove_dir_all(&root).unwrap();
    }
}
