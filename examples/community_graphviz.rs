//! Export the paper's Fig. 7/8-style infection communities as Graphviz DOT
//! files (render with `dot -Tpng fig7_community.dot -o fig7.png`).
//!
//! Run with: `cargo run --release --example community_graphviz`

use earlybird::eval::AcHarness;
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use std::fs;

fn main() {
    let world = AcGenerator::new(AcConfig::small()).generate();
    let harness = AcHarness::build(&world).expect("training population suffices");

    // Fig. 7: the no-hint community (beaconing C&C + delivery pair).
    if let Some(study) = harness.case_study_nohint(13, 0.4, 0.33) {
        fs::write("fig7_community.dot", &study.dot).expect("write fig7");
        println!(
            "fig7_community.dot: {} domains, {} hosts (no-hint mode, Feb 13)",
            study.domains.len(),
            study.host_count
        );
        for (name, reason, score, category) in &study.domains {
            println!("  {score:.2}  {name:<36} {category}  via {reason:?}");
        }
    }

    // Fig. 8: the SOC-hints community (IOC-seeded cluster).
    if let Some(study) = harness.case_study_hints(10, 0.4) {
        fs::write("fig8_community.dot", &study.dot).expect("write fig8");
        println!(
            "\nfig8_community.dot: {} domains, {} hosts (SOC-hints mode, Feb 10)",
            study.domains.len(),
            study.host_count
        );
        for (name, reason, score, category) in &study.domains {
            println!("  {score:.2}  {name:<36} {category}  via {reason:?}");
        }
    }
}
