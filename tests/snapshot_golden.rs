//! Snapshot-format stability: a golden store stream checked into the repo
//! must keep restoring (and keep byte-identical regeneration) until the
//! format version is deliberately bumped.
//!
//! If an intentional format change breaks these tests, bump
//! `earlybird_store::FORMAT_VERSION`, regenerate the fixture with
//! `cargo test --test snapshot_golden regenerate_golden_snapshot -- --ignored`,
//! and commit the new file alongside the version bump.

use earlybird::engine::{DayBatch, Engine, EngineBuilder};
use earlybird::logmodel::{
    DatasetMeta, Day, DnsDayLog, DnsQuery, DnsRecordType, DomainInterner, HostId, HostKind, Ipv4,
    Timestamp,
};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden-v1.ebstore")
}

fn day(domains: &DomainInterner, day: Day, beacon: &str) -> DnsDayLog {
    let base = day.index() as u64 * 86_400;
    let mut queries = Vec::new();
    for host in [1u32, 2] {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(base + 9_000 + host as u64),
            src: HostId::new(host),
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            qname: domains.intern("news.benign.example"),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(93, 184, 216, 34)),
        });
        for beat in 0..12 {
            queries.push(DnsQuery {
                ts: Timestamp::from_secs(base + 20_000 + host as u64 * 5 + beat * 600),
                src: HostId::new(host),
                src_ip: Ipv4::new(10, 0, 0, host as u8),
                qname: domains.intern(beacon),
                qtype: DnsRecordType::A,
                answer: Some(Ipv4::new(203, 0, 113, 5)),
            });
        }
    }
    queries.sort_by_key(|q| q.ts);
    DnsDayLog { day, queries }
}

/// The deterministic fixture engine: fixed perf knobs (they are encoded in
/// the config section), two hand-built days, one full block plus one
/// segment.
fn golden_stream() -> Vec<u8> {
    let domains = Arc::new(DomainInterner::new());
    let meta = DatasetMeta {
        n_hosts: 4,
        host_kinds: vec![HostKind::Workstation; 4],
        internal_suffixes: vec!["corp.internal".into()],
        bootstrap_days: 0,
        total_days: 2,
    };
    let mut engine = EngineBuilder::lanl()
        .parallelism(2)
        .parallel_threshold(512)
        .ingest_chunk_records(8_192)
        .soc_seed("ioc.evil.example")
        .auto_investigate(true)
        .build(Arc::clone(&domains), meta)
        .expect("valid config");
    let mut out = Vec::new();
    engine.ingest_day(DayBatch::Dns(&day(&domains, Day::new(0), "cc.evil.example")));
    engine.freeze().write_to(&mut out).expect("full block");
    engine.ingest_day(DayBatch::Dns(&day(&domains, Day::new(1), "c2.other.example")));
    engine.freeze_day().expect("segment freezes").write_to(&mut out).expect("segment");
    out
}

// The golden fixture is a raw byte stream, so it reads through the
// one-release deprecated shim — the same decode path `Persistence::restore`
// drives through a chain reader.
fn restore_raw(bytes: &[u8], context: &str) -> Engine {
    EngineBuilder::lanl()
        .restore_stream(&mut &bytes[..])
        .unwrap_or_else(|e| panic!("{context}: {e}"))
}

fn assert_restores_like_fixture(mut engine: Engine) {
    assert_eq!(engine.days().collect::<Vec<_>>(), vec![Day::new(0), Day::new(1)]);
    assert_eq!(engine.history().days_ingested(), 2);
    let cc = engine.intern_domain("cc.evil.example");
    assert_eq!(&*engine.resolve(cc), "cc.evil.example");
    let scores = engine.cc_scores(Day::new(0)).expect("day 0 retained");
    assert!(
        scores.iter().any(|c| c.name == "cc.evil.example" && c.detected),
        "the fixture's beacon must still be detected: {scores:?}"
    );
    // The engine keeps working after restore.
    let domains = Arc::new(DomainInterner::new());
    let report = engine.ingest_day(DayBatch::Dns(&day(&domains, Day::new(2), "cc.evil.example")));
    assert!(!report.duplicate);
}

/// The checked-in golden snapshot still restores into a working engine.
#[test]
fn golden_snapshot_still_restores() {
    let bytes = std::fs::read(golden_path())
        .expect("golden fixture missing — run the regenerate_golden_snapshot test");
    let engine = restore_raw(&bytes, "golden snapshot restores");
    assert_restores_like_fixture(engine);
}

/// The writer still produces byte-identical output for the fixture state —
/// any drift here is a format change and needs a version bump plus a
/// regenerated golden file.
#[test]
fn golden_snapshot_bytes_are_reproducible() {
    let checked_in = std::fs::read(golden_path()).expect("golden fixture missing");
    assert_eq!(
        golden_stream(),
        checked_in,
        "snapshot writer output drifted from the checked-in golden file; \
         if intentional, bump FORMAT_VERSION and regenerate"
    );
}

/// Regenerates the golden fixture (run manually after an intentional format
/// change): `cargo test --test snapshot_golden regenerate_golden_snapshot -- --ignored`
#[test]
#[ignore = "writes tests/data/golden-v1.ebstore; run manually on format changes"]
fn regenerate_golden_snapshot() {
    let bytes = golden_stream();
    std::fs::write(golden_path(), &bytes).expect("write golden fixture");
    let engine = restore_raw(&bytes, "fresh golden restores");
    assert_restores_like_fixture(engine);
}
