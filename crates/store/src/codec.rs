//! The primitive wire codec: LEB128 varints, length-prefixed UTF-8
//! strings, bit-exact little-endian `f64`s, and a CRC-32 used to seal each
//! block.
//!
//! Sections are encoded into an in-memory [`Encoder`] buffer and decoded
//! from a bounds-checked [`Decoder`] over the section payload. Neither side
//! trusts the bytes: every read is range-checked and every structural
//! surprise becomes a typed [`StoreError`] instead of a
//! panic or an allocation proportional to an attacker-controlled length.

use crate::error::{StoreError, StoreResult};

// -- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) ------------------------

/// Eight slicing tables: `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` advances byte `b` through `k` additional zero bytes, which
/// lets the update loop fold eight input bytes per iteration ("slicing by
/// 8") while producing bit-identical checksums.
fn crc_tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 8];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = tables[k - 1][i];
                tables[k][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        tables
    })
}

/// Folds `bytes` into a running CRC-32 state (start from
/// [`CRC_INIT`], finish with [`crc32_finish`]). Eight bytes per step; the
/// checksum values are identical to the byte-at-a-time definition, so
/// on-disk blocks stay bit-compatible.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut c = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Initial CRC-32 state.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Finalizes a CRC-32 state into the checksum value.
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, bytes))
}

// -- encoding ---------------------------------------------------------------

/// Append-only section encoder over an in-memory buffer.
///
/// Encoding is infallible (the buffer grows as needed); the buffer is
/// handed to the frame layer which length-prefixes and checksums it.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    #[inline]
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes an unsigned LEB128 varint.
    #[inline]
    pub fn varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Writes a `u32` as a varint.
    #[inline]
    pub fn u32v(&mut self, v: u32) {
        self.varint(v as u64);
    }

    /// Writes a `usize` as a varint.
    #[inline]
    pub fn usizev(&mut self, v: usize) {
        self.varint(v as u64);
    }

    /// Writes an `f64` bit-exactly (IEEE-754 bits, little-endian).
    #[inline]
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends bytes previously produced by another [`Encoder`]'s
    /// [`Self::into_bytes`] — the splice hook that lets callers memoize
    /// the encoding of immutable sub-structures (e.g. sealed day products)
    /// instead of re-encoding them on every checkpoint. The caller owns
    /// the invariant that the bytes came from the same encoding routine
    /// the decoder expects at this position.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes `Some(v)`/`None` as a presence byte plus the encoded value.
    pub fn opt_varint(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.bool(true);
                self.varint(v);
            }
            None => self.bool(false),
        }
    }
}

// -- decoding ---------------------------------------------------------------

/// Bounds-checked decoder over one section payload.
///
/// All reads fail with [`StoreError::Corrupt`] on overrun or malformed
/// primitives; [`Decoder::finish`] additionally rejects trailing bytes so a
/// short decode cannot silently ignore data.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over a section payload; `section` names it in
    /// error contexts.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Decoder { buf, pos: 0, section }
    }

    fn overrun(&self, what: &str) -> StoreError {
        StoreError::corrupt(format!("section `{}` overruns while reading {what}", self.section))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> StoreResult<()> {
        if self.remaining() != 0 {
            return Err(StoreError::corrupt(format!(
                "section `{}` has {} trailing bytes",
                self.section,
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> StoreResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.overrun(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1, "byte")?[0])
    }

    /// Reads a bool byte, rejecting values other than 0/1.
    pub fn bool(&mut self) -> StoreResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::corrupt(format!(
                "section `{}`: invalid bool byte {b:#04x}",
                self.section
            ))),
        }
    }

    /// Reads an unsigned LEB128 varint (at most 10 bytes).
    pub fn varint(&mut self) -> StoreResult<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1, "varint")?[0];
            let low = (byte & 0x7F) as u64;
            if shift == 63 && low > 1 {
                break; // overflow past 64 bits
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(StoreError::corrupt(format!("section `{}`: varint overflows u64", self.section)))
    }

    /// Reads a varint that must fit a `u32`.
    pub fn u32v(&mut self) -> StoreResult<u32> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| {
            StoreError::corrupt(format!("section `{}`: value {v} exceeds u32", self.section))
        })
    }

    /// Reads a varint that must fit a `usize`.
    pub fn usizev(&mut self) -> StoreResult<usize> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| {
            StoreError::corrupt(format!("section `{}`: value {v} exceeds usize", self.section))
        })
    }

    /// Reads a varint element count and sanity-checks it against the bytes
    /// actually remaining (each element occupies at least `min_bytes`), so
    /// a corrupted count cannot drive a huge allocation.
    pub fn seq_len(&mut self, min_bytes: usize) -> StoreResult<usize> {
        let n = self.usizev()?;
        if n.checked_mul(min_bytes.max(1)).is_none_or(|need| need > self.remaining()) {
            return Err(StoreError::corrupt(format!(
                "section `{}`: sequence length {n} exceeds payload",
                self.section
            )));
        }
        Ok(n)
    }

    /// Reads a bit-exact `f64`.
    pub fn f64(&mut self) -> StoreResult<f64> {
        let bytes = self.take(8, "f64")?;
        Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> StoreResult<String> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads a length-prefixed UTF-8 string as a borrow of the payload —
    /// the allocation-free variant of [`Decoder::str`] that bulk decoders
    /// (interner sections hold millions of strings) feed straight into
    /// their sink.
    pub fn str_ref(&mut self) -> StoreResult<&'a str> {
        let len = self.usizev()?;
        let bytes = self.take(len, "string")?;
        std::str::from_utf8(bytes).map_err(|_| {
            StoreError::corrupt(format!("section `{}`: string is not UTF-8", self.section))
        })
    }

    /// Reads an optional varint written by [`Encoder::opt_varint`].
    pub fn opt_varint(&mut self) -> StoreResult<Option<u64>> {
        Ok(if self.bool()? { Some(self.varint()?) } else { None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_across_ranges() {
        let mut e = Encoder::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            e.varint(v);
        }
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "test");
        for &v in &values {
            assert_eq!(d.varint().unwrap(), v);
        }
        d.finish().unwrap();
    }

    #[test]
    fn strings_and_floats_roundtrip() {
        let mut e = Encoder::new();
        e.str("héllo 🌍");
        e.str("");
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.bool(true);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "test");
        assert_eq!(d.str().unwrap(), "héllo 🌍");
        assert_eq!(d.str().unwrap(), "");
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert!(d.bool().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn overrun_and_trailing_bytes_are_typed_errors() {
        let mut d = Decoder::new(&[0x80], "t");
        assert!(matches!(d.varint(), Err(StoreError::Corrupt { .. })));
        let d = Decoder::new(&[1, 2, 3], "t");
        assert!(matches!(d.finish(), Err(StoreError::Corrupt { .. })));
        // A declared length beyond the payload must not allocate.
        let mut e = Encoder::new();
        e.varint(u64::MAX - 1);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        assert!(matches!(d.str(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn seq_len_rejects_oversized_counts() {
        let mut e = Encoder::new();
        e.varint(1_000_000);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "t");
        assert!(matches!(d.seq_len(4), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
