//! Min-max feature scaling.
//!
//! The raw features mix very different ranges (host counts, fractions in
//! `[0,1]`, domain ages in days). Scaling each feature to `[0, 1]` over the
//! training population keeps the linear-probability scores in a comparable
//! range across enterprises, which is what makes thresholds like `T_c = 0.4`
//! transferable (§VI-A).

use serde::{Deserialize, Serialize};

/// Per-feature min-max scaler fitted on a training population.
///
/// # Example
///
/// ```
/// use earlybird_features::FeatureScaler;
/// let rows = vec![vec![0.0, 10.0], vec![4.0, 30.0]];
/// let scaler = FeatureScaler::fit(&rows).unwrap();
/// assert_eq!(scaler.transform(&[2.0, 20.0]), vec![0.5, 0.5]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl FeatureScaler {
    /// Fits the scaler to a training population (one row per sample).
    ///
    /// Returns `None` for an empty population or ragged rows.
    pub fn fit(rows: &[Vec<f64>]) -> Option<Self> {
        let p = rows.first()?.len();
        if rows.iter().any(|r| r.len() != p) {
            return None;
        }
        let mut mins = vec![f64::INFINITY; p];
        let mut maxs = vec![f64::NEG_INFINITY; p];
        for row in rows {
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        Some(FeatureScaler { mins, maxs })
    }

    /// Identity scaler for `p` features (useful when features are already
    /// normalized).
    pub fn identity(p: usize) -> Self {
        FeatureScaler { mins: vec![0.0; p], maxs: vec![1.0; p] }
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }

    /// Per-feature training minima.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-feature training maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Reassembles a scaler from stored bounds — the persistence hook used
    /// by `earlybird-store`. Returns `None` when the bound vectors differ
    /// in length.
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>) -> Option<Self> {
        if mins.len() != maxs.len() {
            return None;
        }
        Some(FeatureScaler { mins, maxs })
    }

    /// Scales a single row to `[0, 1]` per feature, clamping values outside
    /// the training range. Constant features map to `0`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the fitted feature count.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.mins.len(), "feature count mismatch");
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                let range = self.maxs[i] - self.mins[i];
                if range <= 0.0 {
                    0.0
                } else {
                    ((v - self.mins[i]) / range).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Scales many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scales_training_extremes_to_unit_interval() {
        let rows = vec![vec![1.0, -5.0], vec![3.0, 5.0], vec![2.0, 0.0]];
        let s = FeatureScaler::fit(&rows).unwrap();
        assert_eq!(s.transform(&[1.0, -5.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[3.0, 5.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn clamps_out_of_range_values() {
        let s = FeatureScaler::fit(&[vec![0.0], vec![10.0]]).unwrap();
        assert_eq!(s.transform(&[-5.0]), vec![0.0]);
        assert_eq!(s.transform(&[15.0]), vec![1.0]);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let s = FeatureScaler::fit(&[vec![7.0], vec![7.0]]).unwrap();
        assert_eq!(s.transform(&[7.0]), vec![0.0]);
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(FeatureScaler::fit(&[]).is_none());
        assert!(FeatureScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn identity_scaler_passes_unit_values() {
        let s = FeatureScaler::identity(2);
        assert_eq!(s.transform(&[0.25, 0.75]), vec![0.25, 0.75]);
        assert_eq!(s.n_features(), 2);
    }

    proptest! {
        #[test]
        fn output_always_in_unit_interval(
            rows in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 3), 2..20),
            probe in proptest::collection::vec(-200.0f64..200.0, 3),
        ) {
            let s = FeatureScaler::fit(&rows).unwrap();
            for v in s.transform(&probe) {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
