//! The enterprise (AC) evaluation harness (§VI): drives the unified
//! [`Engine`] facade over two months of proxy logs, trains the C&C and
//! similarity regression models on the first two February weeks, and
//! regenerates Fig. 5, Fig. 6(a)/(b)/(c) and the Fig. 7/8 case studies.

use earlybird_core::{BpOutcome, LabelReason};
use earlybird_engine::{DayBatch, Engine, EngineBuilder, Investigation, TrainingReport};
use earlybird_features::FitError;
use earlybird_intel::{DetectionCategory, TrueClass};
use earlybird_logmodel::{Day, DomainSym};
use earlybird_synthgen::ac::AcWorld;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Fig. 5 data: training-set scores of VT-reported vs. legitimate automated
/// domains, sorted ascending.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// Scores of domains reported by VirusTotal at training time.
    pub reported: Vec<f64>,
    /// Scores of the remaining (presumed legitimate) automated domains.
    pub legitimate: Vec<f64>,
}

/// One stacked bar of Fig. 6: category counts at one threshold.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// The score threshold.
    pub threshold: f64,
    /// Detections known to VirusTotal or the SOC at validation time.
    pub known: usize,
    /// Truly malicious detections unknown to both (new discoveries).
    pub new_malicious: usize,
    /// Suspicious detections.
    pub suspicious: usize,
    /// Benign detections (false positives).
    pub legitimate: usize,
}

impl Fig6Row {
    /// All detections at this threshold.
    pub fn total(&self) -> usize {
        self.known + self.new_malicious + self.suspicious + self.legitimate
    }

    /// True detection rate (malicious + suspicious over all).
    pub fn tdr(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.known + self.new_malicious + self.suspicious) as f64 / self.total() as f64
        }
    }

    /// New-discovery rate.
    pub fn ndr(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.new_malicious + self.suspicious) as f64 / self.total() as f64
        }
    }
}

/// A detected community for the Fig. 7/8 case studies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaseStudy {
    /// February day-of-month.
    pub feb_day: u32,
    /// The raw outcome with iteration traces.
    pub outcome: BpOutcome,
    /// `(domain name, reason, score, category)` per labeled domain.
    pub domains: Vec<(String, LabelReason, f64, DetectionCategory)>,
    /// Number of compromised hosts in the community.
    pub host_count: usize,
    /// Graphviz rendering of the community.
    pub dot: String,
}

/// The trained enterprise harness.
pub struct AcHarness<'a> {
    world: &'a AcWorld,
    engine: Engine,
    training: TrainingReport,
    /// Per-day raw scores of every rare automated domain: `(day, sym, score)`.
    cc_scores: Vec<(Day, DomainSym, f64)>,
    /// Training-population scores with VT labels (Fig. 5).
    training_scores: Vec<(f64, bool)>,
}

impl<'a> AcHarness<'a> {
    /// Bootstraps on January, processes February through the engine, trains
    /// both models on the first two February weeks, and scores every
    /// automated domain with the trained model.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`FitError`] when the synthetic population is
    /// too small to fit the regressions (use a larger
    /// [`earlybird_synthgen::ac::AcConfig`]).
    pub fn build(world: &'a AcWorld) -> Result<Self, FitError> {
        let mut engine = EngineBuilder::enterprise()
            .whois(world.intel.whois.clone())
            .build(std::sync::Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
            .expect("enterprise engine config is valid");
        for day_log in &world.dataset.days {
            engine.ingest_day(DayBatch::Proxy { day: day_log, dhcp: &world.dataset.dhcp });
        }

        let train_end = world.config.feb_day(14);
        let training = engine.train_enterprise(train_end, &world.intel.vt, 0.4, 0.4)?;

        // Score every automated domain over the whole month with the
        // trained model.
        let mut cc_scores = Vec::new();
        let mut training_scores = Vec::new();
        let days: Vec<Day> = engine.days().collect();
        for day in days {
            for cand in engine.cc_scores(day).expect("retained day") {
                cc_scores.push((day, cand.domain, cand.score));
                if day <= train_end {
                    training_scores
                        .push((cand.score, world.intel.vt.is_reported(&cand.name, train_end)));
                }
            }
        }

        Ok(AcHarness { world, engine, training, cc_scores, training_scores })
    }

    /// The world the harness was built over.
    pub fn world(&self) -> &'a AcWorld {
        self.world
    }

    /// The engine holding the processed days and trained models.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The training summary (fitted C&C model statistics).
    pub fn training(&self) -> &TrainingReport {
        &self.training
    }

    /// The WHOIS population defaults `(DomAge, DomValidity)`.
    pub fn whois_defaults(&self) -> (f64, f64) {
        self.engine.whois_defaults()
    }

    /// Validation category of a folded domain name, using the paper's
    /// months-later semantics (VT and IOC knowledge with full catch-up).
    pub fn categorize(&self, name: &str) -> DetectionCategory {
        let intel = &self.world.intel;
        if intel.vt.is_ever_reported(name) || intel.ioc.contains_ever(name) {
            return DetectionCategory::KnownMalicious;
        }
        match intel.truth.class_of(name) {
            TrueClass::Malicious(_) => DetectionCategory::NewMalicious,
            TrueClass::Suspicious => DetectionCategory::Suspicious,
            TrueClass::Benign => DetectionCategory::Legitimate,
        }
    }

    fn tally(&self, threshold: f64, names: impl IntoIterator<Item = String>) -> Fig6Row {
        let mut row =
            Fig6Row { threshold, known: 0, new_malicious: 0, suspicious: 0, legitimate: 0 };
        for name in names {
            match self.categorize(&name) {
                DetectionCategory::KnownMalicious => row.known += 1,
                DetectionCategory::NewMalicious => row.new_malicious += 1,
                DetectionCategory::Suspicious => row.suspicious += 1,
                DetectionCategory::Legitimate => row.legitimate += 1,
            }
        }
        row
    }

    /// Fig. 5: training-population score CDFs.
    pub fn figure5(&self) -> Fig5 {
        let mut fig = Fig5::default();
        for &(score, reported) in &self.training_scores {
            if reported {
                fig.reported.push(score);
            } else {
                fig.legitimate.push(score);
            }
        }
        fig.reported.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        fig.legitimate.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        fig
    }

    /// Fig. 6(a): distinct domains labeled C&C at each threshold, by
    /// validation category.
    pub fn figure6a(&self, thresholds: &[f64]) -> Vec<Fig6Row> {
        thresholds
            .iter()
            .map(|&t| {
                let mut names: BTreeSet<String> = BTreeSet::new();
                for (_day, dom, score) in &self.cc_scores {
                    if *score >= t {
                        names.insert(self.engine.resolve(*dom).to_string());
                    }
                }
                self.tally(t, names)
            })
            .collect()
    }

    /// Fig. 6(b): the no-hint mode. C&C domains at threshold `tc` seed
    /// belief propagation; the similarity threshold `T_s` sweeps
    /// `ts_values`. Detected C&C seeds count as detections (they are this
    /// mode's own output).
    pub fn figure6b(&self, tc: f64, ts_values: &[f64]) -> Vec<Fig6Row> {
        ts_values
            .iter()
            .map(|&ts| {
                let mut names: BTreeSet<String> = BTreeSet::new();
                for day in self.engine.days().collect::<Vec<_>>() {
                    let seeds_syms: Vec<DomainSym> = self
                        .cc_scores
                        .iter()
                        .filter(|(d, _, s)| *d == day && *s >= tc)
                        .map(|(_, dom, _)| *dom)
                        .collect();
                    if seeds_syms.is_empty() {
                        continue;
                    }
                    let report = self
                        .engine
                        .investigate(
                            day,
                            Investigation::from_seed_domains(seeds_syms)
                                .sim_threshold(ts)
                                .count_seeds(true),
                        )
                        .expect("retained day");
                    for d in &report.outcome.labeled {
                        names.insert(self.engine.resolve(d.domain).to_string());
                    }
                }
                self.tally(ts, names)
            })
            .collect()
    }

    /// Fig. 6(c): the SOC-hints mode, seeded with the IOC feed; seeds are
    /// *not* counted as detections.
    pub fn figure6c(&self, ts_values: &[f64]) -> Vec<Fig6Row> {
        ts_values
            .iter()
            .map(|&ts| {
                let mut names: BTreeSet<String> = BTreeSet::new();
                for day in self.engine.days().collect::<Vec<_>>() {
                    let seeds_syms = self.ioc_seeds_on(day);
                    if seeds_syms.is_empty() {
                        continue;
                    }
                    let report = self
                        .engine
                        .investigate(
                            day,
                            Investigation::from_seed_domains(seeds_syms).sim_threshold(ts),
                        )
                        .expect("retained day");
                    for d in report.outcome.detected() {
                        names.insert(self.engine.resolve(d.domain).to_string());
                    }
                }
                self.tally(ts, names)
            })
            .collect()
    }

    /// IOC-feed seed domains visible on `day` that were actually contacted.
    fn ioc_seeds_on(&self, day: Day) -> Vec<DomainSym> {
        let Some(index) = self.engine.day_index(day) else { return Vec::new() };
        let folded = self.engine.folded();
        self.world
            .intel
            .ioc
            .visible(day)
            .filter_map(|name| folded.get(name))
            .filter(|&d| index.connectivity(d) > 0)
            .collect()
    }

    /// The Fig. 7 case study: the no-hint community on a February day
    /// (2/13 in the paper).
    pub fn case_study_nohint(&self, feb_day: u32, tc: f64, ts: f64) -> Option<CaseStudy> {
        let day = self.world.config.feb_day(feb_day);
        self.engine.day_index(day)?;
        let seeds_syms: Vec<DomainSym> = self
            .cc_scores
            .iter()
            .filter(|(d, _, s)| *d == day && *s >= tc)
            .map(|(_, dom, _)| *dom)
            .collect();
        let report = self
            .engine
            .investigate(
                day,
                Investigation::from_seed_domains(seeds_syms).sim_threshold(ts).count_seeds(true),
            )
            .ok()?;
        Some(self.finish_case_study(feb_day, day, report.outcome))
    }

    /// The Fig. 8 case study: the SOC-hints community on a February day
    /// (2/10 in the paper).
    pub fn case_study_hints(&self, feb_day: u32, ts: f64) -> Option<CaseStudy> {
        let day = self.world.config.feb_day(feb_day);
        self.engine.day_index(day)?;
        let seeds_syms = self.ioc_seeds_on(day);
        let report = self
            .engine
            .investigate(day, Investigation::from_seed_domains(seeds_syms).sim_threshold(ts))
            .ok()?;
        Some(self.finish_case_study(feb_day, day, report.outcome))
    }

    fn finish_case_study(&self, feb_day: u32, day: Day, out: BpOutcome) -> CaseStudy {
        let domains: Vec<(String, LabelReason, f64, DetectionCategory)> = out
            .labeled
            .iter()
            .map(|d| {
                let name = self.engine.resolve(d.domain).to_string();
                let cat = self.categorize(&name);
                (name, d.reason, d.score, cat)
            })
            .collect();
        let ctx = self.engine.context(day).expect("retained day");
        let dot = crate::dot::community_dot("community", &ctx, &out, |name| {
            match self.categorize(name) {
                DetectionCategory::KnownMalicious => "mediumpurple1",
                DetectionCategory::NewMalicious => "gray80",
                DetectionCategory::Suspicious => "khaki1",
                DetectionCategory::Legitimate => "palegreen",
            }
        });
        CaseStudy { feb_day, host_count: out.compromised_hosts.len(), outcome: out, domains, dot }
    }
}
