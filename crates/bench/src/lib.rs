//! Shared fixtures for the benchmarks and the `experiments` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use earlybird_synthgen::ac::{AcConfig, AcGenerator, AcWorld};
use earlybird_synthgen::lanl::{LanlChallenge, LanlConfig, LanlGenerator};

/// Generates the benchmark-scale LANL challenge (deterministic).
pub fn lanl_world() -> LanlChallenge {
    LanlGenerator::new(LanlConfig::small()).generate()
}

/// Generates the full-scale LANL challenge used by the experiments binary.
pub fn lanl_world_full() -> LanlChallenge {
    LanlGenerator::new(LanlConfig::new(7)).generate()
}

/// Generates the benchmark-scale AC world (deterministic).
pub fn ac_world() -> AcWorld {
    AcGenerator::new(AcConfig::small()).generate()
}

/// Generates the full-scale AC world used by the experiments binary.
pub fn ac_world_full() -> AcWorld {
    AcGenerator::new(AcConfig::new(11)).generate()
}
