//! The enterprise (AC) evaluation harness (§VI): trains the C&C and
//! similarity regression models on the first two February weeks, scores all
//! automated domains, and regenerates Fig. 5, Fig. 6(a)/(b)/(c) and the
//! Fig. 7/8 community case studies.

use earlybird_core::{
    belief_propagation, cc_features, sim_features, train_cc_model, train_sim_model,
    whois_defaults, BpConfig, BpOutcome, CcDetector, CcModel, CcSample, DailyPipeline,
    DayProduct, LabelReason, PipelineConfig, Seeds, SimSample, SimScorer,
};
use earlybird_features::FitError;
use earlybird_intel::{DetectionCategory, TrueClass, WhoisAnswer};
use earlybird_logmodel::{Day, DomainSym};
use earlybird_synthgen::ac::AcWorld;
use earlybird_timing::AutomationDetector;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Fig. 5 data: training-set scores of VT-reported vs. legitimate automated
/// domains, sorted ascending.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// Scores of domains reported by VirusTotal at training time.
    pub reported: Vec<f64>,
    /// Scores of the remaining (presumed legitimate) automated domains.
    pub legitimate: Vec<f64>,
}

/// One stacked bar of Fig. 6: category counts at one threshold.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// The score threshold.
    pub threshold: f64,
    /// Detections known to VirusTotal or the SOC at validation time.
    pub known: usize,
    /// Truly malicious detections unknown to both (new discoveries).
    pub new_malicious: usize,
    /// Suspicious detections.
    pub suspicious: usize,
    /// Benign detections (false positives).
    pub legitimate: usize,
}

impl Fig6Row {
    /// All detections at this threshold.
    pub fn total(&self) -> usize {
        self.known + self.new_malicious + self.suspicious + self.legitimate
    }

    /// True detection rate (malicious + suspicious over all).
    pub fn tdr(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.known + self.new_malicious + self.suspicious) as f64 / self.total() as f64
        }
    }

    /// New-discovery rate.
    pub fn ndr(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.new_malicious + self.suspicious) as f64 / self.total() as f64
        }
    }
}

/// A detected community for the Fig. 7/8 case studies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CaseStudy {
    /// February day-of-month.
    pub feb_day: u32,
    /// The raw outcome with iteration traces.
    pub outcome: BpOutcome,
    /// `(domain name, reason, score, category)` per labeled domain.
    pub domains: Vec<(String, LabelReason, f64, DetectionCategory)>,
    /// Number of compromised hosts in the community.
    pub host_count: usize,
    /// Graphviz rendering of the community.
    pub dot: String,
}

/// The trained enterprise harness.
pub struct AcHarness<'a> {
    world: &'a AcWorld,
    products: BTreeMap<Day, DayProduct>,
    cc_detector: CcDetector,
    sim_scorer: SimScorer,
    whois_defaults: (f64, f64),
    /// Per-day raw scores of every rare automated domain: `(day, sym, score)`.
    cc_scores: Vec<(Day, DomainSym, f64)>,
    /// Training-population scores with VT labels (Fig. 5).
    training_scores: Vec<(f64, bool)>,
}

impl<'a> AcHarness<'a> {
    /// Bootstraps on January, processes February, trains both models on the
    /// first two February weeks, and scores every automated domain.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`FitError`] when the synthetic population is
    /// too small to fit the regressions (use a larger [`earlybird_synthgen::ac::AcConfig`]).
    pub fn build(world: &'a AcWorld) -> Result<Self, FitError> {
        let meta = &world.dataset.meta;
        let mut pipeline =
            DailyPipeline::new(std::sync::Arc::clone(&world.dataset.domains), PipelineConfig::enterprise());
        let mut products = BTreeMap::new();
        for day_log in &world.dataset.days {
            if day_log.day.index() < meta.bootstrap_days {
                pipeline.bootstrap_proxy_day(day_log, &world.dataset.dhcp, meta);
            } else {
                let p = pipeline.process_proxy_day(day_log, &world.dataset.dhcp, meta);
                products.insert(day_log.day, p);
            }
        }

        let automation = AutomationDetector::paper_default();
        let train_end = world.config.feb_day(14);

        // Pass 1: WHOIS defaults over the automated-domain population.
        let mut known_whois = Vec::new();
        for (day, product) in &products {
            for (dom, _) in automated_domains(&automation, product) {
                let name = product.folded.resolve(dom);
                if let WhoisAnswer::Known { age_days, validity_days } =
                    world.intel.whois.lookup(&name, *day)
                {
                    known_whois.push((age_days, validity_days));
                }
            }
        }
        let defaults = whois_defaults(known_whois);

        // Pass 2: training samples from the first two weeks.
        let mut cc_samples = Vec::new();
        for (_day, product) in products.range(..=train_end) {
            let ctx = product.context(Some(&world.intel.whois), defaults);
            for (dom, auto_hosts) in automated_domains(&automation, product) {
                let features = cc_features(&ctx, dom, auto_hosts);
                let name = product.folded.resolve(dom);
                let reported = world.intel.vt.is_reported(&name, train_end);
                cc_samples.push(CcSample { features, reported });
            }
        }
        let (cc_model, cc_scaler) = train_cc_model(&cc_samples, 0.4)?;

        // Similarity training: rare non-automated domains contacted by hosts
        // that also contact VT-confirmed automated domains (§VI-A).
        let mut sim_samples = Vec::new();
        for (_day, product) in products.range(..=train_end) {
            let ctx = product.context(Some(&world.intel.whois), defaults);
            let mut confirmed: BTreeSet<DomainSym> = BTreeSet::new();
            let mut hosts = BTreeSet::new();
            for (dom, _) in automated_domains(&automation, product) {
                let name = product.folded.resolve(dom);
                if world.intel.vt.is_reported(&name, train_end) {
                    confirmed.insert(dom);
                    if let Some(hs) = product.index.hosts_of(dom) {
                        hosts.extend(hs.iter().copied());
                    }
                }
            }
            if confirmed.is_empty() {
                continue;
            }
            let mut seen = BTreeSet::new();
            for &h in &hosts {
                let Some(rdoms) = product.index.rare_domains_of(h) else { continue };
                for &d in rdoms {
                    if confirmed.contains(&d) || !seen.insert(d) {
                        continue;
                    }
                    let features = sim_features(&ctx, d, &confirmed);
                    let name = product.folded.resolve(d);
                    let reported = world.intel.vt.is_reported(&name, train_end);
                    sim_samples.push(SimSample { features, reported });
                }
            }
        }
        let (sim_model, sim_scaler) = train_sim_model(&sim_samples, 0.4)?;

        // Pass 3: score every automated domain over the whole month.
        let mut cc_scores = Vec::new();
        let mut training_scores = Vec::new();
        for (day, product) in &products {
            let ctx = product.context(Some(&world.intel.whois), defaults);
            for (dom, auto_hosts) in automated_domains(&automation, product) {
                let features = cc_features(&ctx, dom, auto_hosts);
                let score = cc_model.score(&cc_scaler.transform(&features.to_row()));
                cc_scores.push((*day, dom, score));
                if *day <= train_end {
                    let name = product.folded.resolve(dom);
                    training_scores.push((score, world.intel.vt.is_reported(&name, train_end)));
                }
            }
        }

        Ok(AcHarness {
            world,
            products,
            cc_detector: CcDetector::new(
                automation,
                CcModel::Regression { model: cc_model, scaler: cc_scaler },
            ),
            sim_scorer: SimScorer::Regression { model: sim_model, scaler: sim_scaler },
            whois_defaults: defaults,
            cc_scores,
            training_scores,
        })
    }

    /// The world the harness was built over.
    pub fn world(&self) -> &'a AcWorld {
        self.world
    }

    /// The trained C&C detector.
    pub fn cc_detector(&self) -> &CcDetector {
        &self.cc_detector
    }

    /// The trained similarity scorer.
    pub fn sim_scorer(&self) -> &SimScorer {
        &self.sim_scorer
    }

    /// The per-day products (February).
    pub fn products(&self) -> &BTreeMap<Day, DayProduct> {
        &self.products
    }

    /// The WHOIS population defaults `(DomAge, DomValidity)`.
    pub fn whois_defaults(&self) -> (f64, f64) {
        self.whois_defaults
    }

    /// Validation category of a folded domain name, using the paper's
    /// months-later semantics (VT and IOC knowledge with full catch-up).
    pub fn categorize(&self, name: &str) -> DetectionCategory {
        let intel = &self.world.intel;
        if intel.vt.is_ever_reported(name) || intel.ioc.contains_ever(name) {
            return DetectionCategory::KnownMalicious;
        }
        match intel.truth.class_of(name) {
            TrueClass::Malicious(_) => DetectionCategory::NewMalicious,
            TrueClass::Suspicious => DetectionCategory::Suspicious,
            TrueClass::Benign => DetectionCategory::Legitimate,
        }
    }

    fn tally(&self, threshold: f64, names: impl IntoIterator<Item = String>) -> Fig6Row {
        let mut row =
            Fig6Row { threshold, known: 0, new_malicious: 0, suspicious: 0, legitimate: 0 };
        for name in names {
            match self.categorize(&name) {
                DetectionCategory::KnownMalicious => row.known += 1,
                DetectionCategory::NewMalicious => row.new_malicious += 1,
                DetectionCategory::Suspicious => row.suspicious += 1,
                DetectionCategory::Legitimate => row.legitimate += 1,
            }
        }
        row
    }

    /// Fig. 5: training-population score CDFs.
    pub fn figure5(&self) -> Fig5 {
        let mut fig = Fig5::default();
        for &(score, reported) in &self.training_scores {
            if reported {
                fig.reported.push(score);
            } else {
                fig.legitimate.push(score);
            }
        }
        fig.reported.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        fig.legitimate.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        fig
    }

    /// Fig. 6(a): distinct domains labeled C&C at each threshold, by
    /// validation category.
    pub fn figure6a(&self, thresholds: &[f64]) -> Vec<Fig6Row> {
        thresholds
            .iter()
            .map(|&t| {
                let mut names: BTreeSet<String> = BTreeSet::new();
                for (day, dom, score) in &self.cc_scores {
                    if *score >= t {
                        let product = &self.products[day];
                        names.insert(product.folded.resolve(*dom).to_string());
                    }
                }
                self.tally(t, names)
            })
            .collect()
    }

    /// Fig. 6(b): the no-hint mode. C&C domains at threshold `tc` seed
    /// belief propagation; the similarity threshold `T_s` sweeps
    /// `ts_values`. Detected C&C seeds count as detections (they are this
    /// mode's own output).
    pub fn figure6b(&self, tc: f64, ts_values: &[f64]) -> Vec<Fig6Row> {
        ts_values
            .iter()
            .map(|&ts| {
                let mut sim = self.sim_scorer.clone();
                sim.set_threshold(ts);
                let mut names: BTreeSet<String> = BTreeSet::new();
                for (day, product) in &self.products {
                    let ctx = product.context(Some(&self.world.intel.whois), self.whois_defaults);
                    let seeds_syms: Vec<DomainSym> = self
                        .cc_scores
                        .iter()
                        .filter(|(d, _, s)| d == day && *s >= tc)
                        .map(|(_, dom, _)| *dom)
                        .collect();
                    if seeds_syms.is_empty() {
                        continue;
                    }
                    let seeds = Seeds::from_domains_with_hosts(&ctx, seeds_syms);
                    let out = belief_propagation(
                        &ctx,
                        Some(&self.cc_detector),
                        &sim,
                        &seeds,
                        &BpConfig::enterprise_default(),
                    );
                    for d in &out.labeled {
                        names.insert(product.folded.resolve(d.domain).to_string());
                    }
                }
                self.tally(ts, names)
            })
            .collect()
    }

    /// Fig. 6(c): the SOC-hints mode, seeded with the IOC feed; seeds are
    /// *not* counted as detections.
    pub fn figure6c(&self, ts_values: &[f64]) -> Vec<Fig6Row> {
        ts_values
            .iter()
            .map(|&ts| {
                let mut sim = self.sim_scorer.clone();
                sim.set_threshold(ts);
                let mut names: BTreeSet<String> = BTreeSet::new();
                for (day, product) in &self.products {
                    let ctx = product.context(Some(&self.world.intel.whois), self.whois_defaults);
                    let seeds_syms: Vec<DomainSym> = self
                        .world
                        .intel
                        .ioc
                        .visible(*day)
                        .filter_map(|name| product.folded.get(name))
                        .filter(|&d| product.index.connectivity(d) > 0)
                        .collect();
                    if seeds_syms.is_empty() {
                        continue;
                    }
                    let seeds = Seeds::from_domains_with_hosts(&ctx, seeds_syms);
                    let out = belief_propagation(
                        &ctx,
                        Some(&self.cc_detector),
                        &sim,
                        &seeds,
                        &BpConfig::enterprise_default(),
                    );
                    for d in out.detected() {
                        names.insert(product.folded.resolve(d.domain).to_string());
                    }
                }
                self.tally(ts, names)
            })
            .collect()
    }

    /// The Fig. 7 case study: the no-hint community on a February day
    /// (2/13 in the paper).
    pub fn case_study_nohint(&self, feb_day: u32, tc: f64, ts: f64) -> Option<CaseStudy> {
        let day = self.world.config.feb_day(feb_day);
        let product = self.products.get(&day)?;
        let ctx = product.context(Some(&self.world.intel.whois), self.whois_defaults);
        let seeds_syms: Vec<DomainSym> = self
            .cc_scores
            .iter()
            .filter(|(d, _, s)| *d == day && *s >= tc)
            .map(|(_, dom, _)| *dom)
            .collect();
        let seeds = Seeds::from_domains_with_hosts(&ctx, seeds_syms);
        let mut sim = self.sim_scorer.clone();
        sim.set_threshold(ts);
        let out = belief_propagation(
            &ctx,
            Some(&self.cc_detector),
            &sim,
            &seeds,
            &BpConfig::enterprise_default(),
        );
        Some(self.finish_case_study(feb_day, product, out))
    }

    /// The Fig. 8 case study: the SOC-hints community on a February day
    /// (2/10 in the paper).
    pub fn case_study_hints(&self, feb_day: u32, ts: f64) -> Option<CaseStudy> {
        let day = self.world.config.feb_day(feb_day);
        let product = self.products.get(&day)?;
        let ctx = product.context(Some(&self.world.intel.whois), self.whois_defaults);
        let seeds_syms: Vec<DomainSym> = self
            .world
            .intel
            .ioc
            .visible(day)
            .filter_map(|name| product.folded.get(name))
            .filter(|&d| product.index.connectivity(d) > 0)
            .collect();
        let seeds = Seeds::from_domains_with_hosts(&ctx, seeds_syms);
        let mut sim = self.sim_scorer.clone();
        sim.set_threshold(ts);
        let out = belief_propagation(
            &ctx,
            Some(&self.cc_detector),
            &sim,
            &seeds,
            &BpConfig::enterprise_default(),
        );
        Some(self.finish_case_study(feb_day, product, out))
    }

    fn finish_case_study(&self, feb_day: u32, product: &DayProduct, out: BpOutcome) -> CaseStudy {
        let domains: Vec<(String, LabelReason, f64, DetectionCategory)> = out
            .labeled
            .iter()
            .map(|d| {
                let name = product.folded.resolve(d.domain).to_string();
                let cat = self.categorize(&name);
                (name, d.reason, d.score, cat)
            })
            .collect();
        let ctx = product.context(Some(&self.world.intel.whois), self.whois_defaults);
        let dot = crate::dot::community_dot("community", &ctx, &out, |name| {
            match self.categorize(name) {
                DetectionCategory::KnownMalicious => "mediumpurple1",
                DetectionCategory::NewMalicious => "gray80",
                DetectionCategory::Suspicious => "khaki1",
                DetectionCategory::Legitimate => "palegreen",
            }
        });
        CaseStudy {
            feb_day,
            host_count: out.compromised_hosts.len(),
            outcome: out,
            domains,
            dot,
        }
    }
}

/// Rare domains with automated connections in a day product:
/// `(domain, automated host count)`.
fn automated_domains(
    automation: &AutomationDetector,
    product: &DayProduct,
) -> Vec<(DomainSym, usize)> {
    let mut out = Vec::new();
    for dom in product.index.rare_domains() {
        let Some(hosts) = product.index.hosts_of(dom) else { continue };
        let n = hosts
            .iter()
            .filter(|&&h| {
                product
                    .index
                    .beacon_series(h, dom)
                    .is_some_and(|series| automation.is_automated(series))
            })
            .count();
        if n > 0 {
            out.push((dom, n));
        }
    }
    out.sort_by_key(|(d, _)| *d);
    out
}
