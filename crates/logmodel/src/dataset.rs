//! Dataset containers: daily record batches plus the interners and auxiliary
//! logs (DHCP/VPN leases) they reference.

use crate::dns::DnsQuery;
use crate::host::{HostId, HostKind};
use crate::http::ProxyRecord;
use crate::intern::{DomainInterner, PathInterner, UaInterner};
use crate::ip::Ipv4;
use crate::time::{Day, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Metadata shared by both dataset flavours.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Number of internal hosts (workstations + servers).
    pub n_hosts: u32,
    /// Host kinds, indexed by [`HostId::index`].
    pub host_kinds: Vec<HostKind>,
    /// Domain-name suffixes considered internal to the enterprise (queries to
    /// these are dropped during reduction).
    pub internal_suffixes: Vec<String>,
    /// Number of bootstrap (training/profiling) days at the start of the
    /// window; operation days follow.
    pub bootstrap_days: u32,
    /// Total days in the window.
    pub total_days: u32,
}

impl DatasetMeta {
    /// Kind of `host`, defaulting to workstation for out-of-range ids.
    pub fn kind(&self, host: HostId) -> HostKind {
        self.host_kinds.get(host.index() as usize).copied().unwrap_or(HostKind::Workstation)
    }

    /// First day of the operation (post-bootstrap) period.
    pub fn first_operation_day(&self) -> Day {
        Day::new(self.bootstrap_days)
    }

    /// Days in the operation period.
    pub fn operation_days(&self) -> impl Iterator<Item = Day> {
        Day::new(self.bootstrap_days).range_to(Day::new(self.total_days))
    }

    /// Days in the bootstrap period.
    pub fn bootstrap_period(&self) -> impl Iterator<Item = Day> {
        Day::new(0).range_to(Day::new(self.bootstrap_days))
    }
}

/// One day of DNS logs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DnsDayLog {
    /// Day the records fall on.
    pub day: Day,
    /// Queries in timestamp order.
    pub queries: Vec<DnsQuery>,
}

/// A LANL-style DNS dataset: per-day query batches plus the domain interner.
pub struct DnsDataset {
    /// Interner for every queried name.
    pub domains: Arc<DomainInterner>,
    /// Daily batches, one per day of the window, in day order.
    pub days: Vec<DnsDayLog>,
    /// Shared metadata.
    pub meta: DatasetMeta,
}

impl DnsDataset {
    /// The batch for `day`, if within the window.
    pub fn day(&self, day: Day) -> Option<&DnsDayLog> {
        self.days.iter().find(|d| d.day == day)
    }

    /// Total number of queries across all days.
    pub fn total_queries(&self) -> usize {
        self.days.iter().map(|d| d.queries.len()).sum()
    }
}

impl fmt::Debug for DnsDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DnsDataset")
            .field("days", &self.days.len())
            .field("queries", &self.total_queries())
            .field("domains", &self.domains.len())
            .finish()
    }
}

/// One day of web-proxy logs.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProxyDayLog {
    /// Day the records fall on (UTC).
    pub day: Day,
    /// Records, roughly in local-timestamp order as proxies emit them.
    pub records: Vec<ProxyRecord>,
}

/// A DHCP or VPN address lease: `ip` belonged to `host` during
/// `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DhcpLease {
    /// Leased address.
    pub ip: Ipv4,
    /// Host holding the lease.
    pub host: HostId,
    /// Lease start (inclusive, UTC).
    pub start: Timestamp,
    /// Lease end (exclusive, UTC).
    pub end: Timestamp,
}

/// The DHCP/VPN lease log the paper parses to convert "DHCP and VPN IP
/// addresses to hostnames" (§IV-A).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DhcpLog {
    by_ip: HashMap<Ipv4, Vec<DhcpLease>>,
}

impl DhcpLog {
    /// Creates an empty lease log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a lease. Leases for one IP are kept sorted by start time.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn add(&mut self, lease: DhcpLease) {
        assert!(lease.start < lease.end, "lease interval must be non-empty");
        let v = self.by_ip.entry(lease.ip).or_default();
        let pos = v.partition_point(|l| l.start <= lease.start);
        v.insert(pos, lease);
    }

    /// Resolves `ip` at UTC time `ts` to the host holding the lease then.
    pub fn resolve(&self, ip: Ipv4, ts: Timestamp) -> Option<HostId> {
        let leases = self.by_ip.get(&ip)?;
        // Last lease starting at or before ts.
        let idx = leases.partition_point(|l| l.start <= ts);
        let lease = leases[..idx].last()?;
        (ts < lease.end).then_some(lease.host)
    }

    /// Total number of leases.
    pub fn len(&self) -> usize {
        self.by_ip.values().map(Vec::len).sum()
    }

    /// Whether the log holds no leases.
    pub fn is_empty(&self) -> bool {
        self.by_ip.is_empty()
    }
}

/// An AC-style web-proxy dataset: daily batches, interners for domains /
/// user agents / URL paths, and the DHCP/VPN lease log used by
/// normalization.
pub struct ProxyDataset {
    /// Interner for destination and referer domains.
    pub domains: Arc<DomainInterner>,
    /// Interner for user-agent strings.
    pub uas: Arc<UaInterner>,
    /// Interner for URL paths.
    pub paths: Arc<PathInterner>,
    /// Daily batches in day order.
    pub days: Vec<ProxyDayLog>,
    /// DHCP/VPN lease log.
    pub dhcp: DhcpLog,
    /// Shared metadata.
    pub meta: DatasetMeta,
}

impl ProxyDataset {
    /// The batch for `day`, if within the window.
    pub fn day(&self, day: Day) -> Option<&ProxyDayLog> {
        self.days.iter().find(|d| d.day == day)
    }

    /// Total number of records across all days.
    pub fn total_records(&self) -> usize {
        self.days.iter().map(|d| d.records.len()).sum()
    }
}

impl fmt::Debug for ProxyDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyDataset")
            .field("days", &self.days.len())
            .field("records", &self.total_records())
            .field("domains", &self.domains.len())
            .field("leases", &self.dhcp.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease(ip: Ipv4, host: u32, start: u64, end: u64) -> DhcpLease {
        DhcpLease {
            ip,
            host: HostId::new(host),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    #[test]
    fn dhcp_resolution_picks_covering_lease() {
        let ip = Ipv4::new(10, 0, 0, 5);
        let mut log = DhcpLog::new();
        log.add(lease(ip, 1, 0, 100));
        log.add(lease(ip, 2, 100, 200));
        assert_eq!(log.resolve(ip, Timestamp::from_secs(50)), Some(HostId::new(1)));
        assert_eq!(log.resolve(ip, Timestamp::from_secs(100)), Some(HostId::new(2)));
        assert_eq!(log.resolve(ip, Timestamp::from_secs(199)), Some(HostId::new(2)));
        assert_eq!(log.resolve(ip, Timestamp::from_secs(200)), None);
        assert_eq!(log.resolve(Ipv4::new(10, 0, 0, 6), Timestamp::from_secs(50)), None);
    }

    #[test]
    fn dhcp_out_of_order_insertion() {
        let ip = Ipv4::new(10, 0, 0, 5);
        let mut log = DhcpLog::new();
        log.add(lease(ip, 2, 100, 200));
        log.add(lease(ip, 1, 0, 100));
        assert_eq!(log.resolve(ip, Timestamp::from_secs(10)), Some(HostId::new(1)));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn dhcp_gap_between_leases_resolves_to_none() {
        let ip = Ipv4::new(10, 0, 0, 7);
        let mut log = DhcpLog::new();
        log.add(lease(ip, 1, 0, 50));
        log.add(lease(ip, 2, 80, 120));
        assert_eq!(log.resolve(ip, Timestamp::from_secs(60)), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn dhcp_rejects_empty_lease() {
        let mut log = DhcpLog::new();
        log.add(lease(Ipv4::new(10, 0, 0, 1), 1, 10, 10));
    }

    #[test]
    fn meta_period_iterators() {
        let meta = DatasetMeta {
            n_hosts: 4,
            host_kinds: vec![HostKind::Workstation, HostKind::Server],
            internal_suffixes: vec!["corp.internal".into()],
            bootstrap_days: 2,
            total_days: 4,
        };
        assert_eq!(meta.bootstrap_period().count(), 2);
        let op: Vec<Day> = meta.operation_days().collect();
        assert_eq!(op, vec![Day::new(2), Day::new(3)]);
        assert_eq!(meta.kind(HostId::new(1)), HostKind::Server);
        assert_eq!(meta.kind(HostId::new(99)), HostKind::Workstation);
    }
}
