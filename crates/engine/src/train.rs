//! Enterprise training (§III-E steps 3–4) on top of the ingested history:
//! fits the C&C and similarity regressions and upgrades the engine's
//! models in place.

use crate::core_loop::Engine;
use crate::report::TrainingReport;
use earlybird_core::{
    cc_features, sim_features, train_cc_model, train_sim_model, whois_defaults, CcModel, CcSample,
    SimSample,
};
use earlybird_features::FitError;
use earlybird_intel::{VirusTotalOracle, WhoisAnswer};
use earlybird_logmodel::{Day, DomainSym};
use std::collections::BTreeSet;

impl Engine {
    /// Trains the enterprise models on the ingested days up to and
    /// including `train_end` (the paper uses the first two February weeks):
    ///
    /// 1. population-average WHOIS defaults over every automated domain,
    /// 2. the six-feature C&C regression with threshold `tc` (§IV-C),
    /// 3. the eight-feature similarity regression with threshold `ts`
    ///    (§IV-D),
    ///
    /// then installs all three into the engine, so subsequent
    /// [`Engine::ingest_day`] / [`Engine::investigate`] /
    /// [`Engine::cc_scores`] calls use the trained models.
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`] when the training population is too small or
    /// degenerate.
    pub fn train_enterprise(
        &mut self,
        train_end: Day,
        vt: &VirusTotalOracle,
        tc: f64,
        ts: f64,
    ) -> Result<TrainingReport, FitError> {
        // Pass 1: WHOIS defaults over the automated-domain population of
        // the whole ingested window.
        let mut known_whois = Vec::new();
        if let Some(whois) = &self.config().whois {
            for (&day, product) in self.operation_products() {
                for (domain, _) in automated_domains(self, day) {
                    let name = product.folded.resolve(domain);
                    if let WhoisAnswer::Known { age_days, validity_days } = whois.lookup(&name, day)
                    {
                        known_whois.push((age_days, validity_days));
                    }
                }
            }
        }
        let defaults = whois_defaults(known_whois);
        self.set_whois_defaults(defaults);

        // Pass 2: labeled training samples from the training window.
        let mut cc_samples = Vec::new();
        let mut sim_samples = Vec::new();
        let days: Vec<Day> =
            self.operation_products().range(..=train_end).map(|(&d, _)| d).collect();
        for day in days {
            let product = &self.operation_products()[&day];
            let ctx = self.context(day).expect("retained day has context");
            let autos = automated_domains(self, day);

            for &(domain, auto_hosts) in &autos {
                let features = cc_features(&ctx, domain, auto_hosts);
                let name = product.folded.resolve(domain);
                let reported = vt.is_reported(&name, train_end);
                cc_samples.push(CcSample { features, reported });
            }

            // Similarity training: rare non-automated domains contacted by
            // hosts that also contact VT-confirmed automated domains
            // (§VI-A).
            let mut confirmed: BTreeSet<DomainSym> = BTreeSet::new();
            let mut hosts = BTreeSet::new();
            for &(domain, _) in &autos {
                let name = product.folded.resolve(domain);
                if vt.is_reported(&name, train_end) {
                    confirmed.insert(domain);
                    if let Some(hs) = product.index.hosts_of(domain) {
                        hosts.extend(hs.iter().copied());
                    }
                }
            }
            if confirmed.is_empty() {
                continue;
            }
            let mut seen = BTreeSet::new();
            for &h in &hosts {
                let Some(rdoms) = product.index.rare_domains_of(h) else { continue };
                for &d in rdoms {
                    if confirmed.contains(&d) || !seen.insert(d) {
                        continue;
                    }
                    let features = sim_features(&ctx, d, &confirmed);
                    let name = product.folded.resolve(d);
                    let reported = vt.is_reported(&name, train_end);
                    sim_samples.push(SimSample { features, reported });
                }
            }
        }

        let (cc_model, cc_scaler) = train_cc_model(&cc_samples, tc)?;
        let (sim_model, sim_scaler) = train_sim_model(&sim_samples, ts)?;

        let report = TrainingReport {
            cc_samples: cc_samples.len(),
            sim_samples: sim_samples.len(),
            cc_r_squared: cc_model.fit().r_squared(),
            cc_summary: cc_model.summary(),
            sim_r_squared: sim_model.fit().r_squared(),
            sim_summary: sim_model.summary(),
            whois_defaults: defaults,
        };
        self.set_models(
            CcModel::Regression { model: cc_model, scaler: cc_scaler },
            earlybird_core::SimScorer::Regression { model: sim_model, scaler: sim_scaler },
        );
        Ok(report)
    }
}

/// Rare domains with automated connections on a retained day:
/// `(domain, automated host count)`, sorted by domain for determinism.
/// Uses the beacon-only sweep — training enumerates the automated
/// population repeatedly and does not need model scores here.
fn automated_domains(engine: &Engine, day: Day) -> Vec<(DomainSym, usize)> {
    let index = engine.day_index(day).expect("retained day");
    let pairs = earlybird_core::automated_pairs_with(index, &engine.config().automation);
    // Pairs arrive sorted by (domain, host); fold into per-domain counts.
    let mut out: Vec<(DomainSym, usize)> = Vec::new();
    for (_host, domain, _evidence) in pairs {
        match out.last_mut() {
            Some((last, count)) if *last == domain => *count += 1,
            _ => out.push((domain, 1)),
        }
    }
    out
}
